(* Incremental rerouting: the warm retry path (congestion-history reuse
   and ledger replay across rungs) must be equivalent to from-scratch
   retries — same outcome, same routing mode, same emulation frequency,
   and verifier-clean schedules on both sides. *)

module Ids = Msched_netlist.Ids
module Tiers = Msched_route.Tiers
module Reroute = Msched_route.Reroute
module Schedule = Msched_route.Schedule
module Design_gen = Msched_gen.Design_gen
module Sink = Msched_obs.Sink
module Verify = Msched_check.Verify
module Compile = Msched.Compile

(* Tight enough that a fair share of seeds fail the baseline rung and
   exercise the retry ladder, loose enough that relaxation recovers. *)
let tight_options =
  {
    Compile.default_options with
    Compile.max_block_weight = 32;
    pins_per_fpga = 24;
    route = { Tiers.default_options with Tiers.max_extra_slots = 0 };
  }

let design ~seed ~modules ~domains =
  (Design_gen.random_multidomain ~seed ~domains ~modules ~mts_fraction:0.25 ())
    .Design_gen.netlist

let run ~reuse ?(options = tight_options) ?(max_retries = 2)
    ?(fallback_hard = true) nl =
  Compile.compile_resilient ~options ~max_retries ~fallback_hard ~reuse nl

let labels r =
  List.map (fun a -> a.Compile.attempt_label) r.Compile.attempts

let check_verifier_clean name r =
  match r.Compile.compiled with
  | None -> ()
  | Some c ->
      let report =
        Compile.verify_schedule c.Compile.prepared c.Compile.schedule
      in
      Alcotest.(check bool) (name ^ ": verifier clean") true
        (Verify.is_clean report)

(* ---- Differential suite: warm vs from-scratch over many seeds. ---- *)

let differential_nl ~ctxname nl =
  let warm = run ~reuse:true nl in
  let cold = run ~reuse:false nl in
  Alcotest.(check bool)
    (ctxname ^ ": same success")
    (Compile.succeeded cold) (Compile.succeeded warm);
  Alcotest.(check (list string))
    (ctxname ^ ": same attempt labels")
    (labels cold) (labels warm);
  let mode r =
    match r.Compile.degradation.Compile.achieved_mode with
    | None -> "none"
    | Some m -> Tiers.mode_name m
  in
  Alcotest.(check string)
    (ctxname ^ ": same routing mode")
    (mode cold) (mode warm);
  (* Equal-anchor replay reuses minimal-length paths, so the frame length
     — hence the emulation frequency — must be bit-identical. *)
  let hz r =
    match r.Compile.degradation.Compile.achieved_hz with
    | None -> 0.0
    | Some hz -> hz
  in
  Alcotest.(check (float 0.0))
    (ctxname ^ ": same emulation frequency")
    (hz cold) (hz warm);
  check_verifier_clean (ctxname ^ " warm") warm;
  check_verifier_clean (ctxname ^ " cold") cold;
  Compile.succeeded warm

let differential_one ~seed ~modules ~domains =
  differential_nl
    ~ctxname:(Printf.sprintf "seed %d" seed)
    (design ~seed ~modules ~domains)

let test_differential_many_seeds () =
  (* >= 50 designs across sizes and domain counts. *)
  let succeeded = ref 0 and total = ref 0 in
  List.iter
    (fun (modules, domains) ->
      for seed = 100 to 100 + 16 do
        incr total;
        if differential_one ~seed ~modules ~domains then incr succeeded
      done)
    [ (10, 2); (16, 3); (22, 4) ];
  Alcotest.(check bool)
    (Printf.sprintf "designs compiled (%d/%d)" !succeeded !total)
    true
    (!succeeded > !total / 2);
  Alcotest.(check bool) "suite is >= 50 designs" true (!total >= 50)

let test_differential_families () =
  (* Warm ≡ cold must also hold on the GALS/handshake workload families
     (ISSUE 6), whose transport patterns — synchronizer chains, dense
     pairwise crossings, gated RAM write clocks — differ structurally from
     the random multidomain shape the ladder was tuned on. *)
  let succeeded = ref 0 and total = ref 0 in
  List.iter
    (fun (label, thunk) ->
      List.iter
        (fun seed ->
          incr total;
          let d : Msched_gen.Design_gen.design = thunk seed in
          if
            differential_nl
              ~ctxname:(Printf.sprintf "%s seed %d" label seed)
              d.Design_gen.netlist
          then incr succeeded)
        [ 300; 301; 302 ])
    [
      ( "gals",
        fun seed -> Design_gen.gals_islands ~seed ~islands:4 ~island_size:2 () );
      ( "dense",
        fun seed -> Design_gen.dense_crossing ~seed ~domains:6 ~density:0.3 () );
      ( "fabric",
        fun seed -> Design_gen.gated_memory_fabric ~seed ~banks:4 () );
    ];
  Alcotest.(check bool)
    (Printf.sprintf "family designs compiled (%d/%d)" !succeeded !total)
    true
    (!succeeded > !total / 2)

(* ---- Warm reuse must do strictly less search work on retry rungs. ---- *)

let test_warm_expansions_lower () =
  (* A design set where the baseline rung fails and retries recover: the
     acceptance criterion is strictly fewer pathfinder expansions under
     warm reuse on every rung after the first, plus actual ledger hits. *)
  let exercised = ref 0 in
  List.iter
    (fun seed ->
      let nl = design ~seed ~modules:30 ~domains:3 in
      let obs_warm = Sink.create () in
      let obs_cold = Sink.create () in
      let warm =
        run ~reuse:true
          ~options:{ tight_options with Compile.obs = obs_warm }
          nl
      in
      let cold =
        run ~reuse:false
          ~options:{ tight_options with Compile.obs = obs_cold }
          nl
      in
      if
        Compile.succeeded warm
        && Compile.succeeded cold
        && List.length warm.Compile.attempts >= 2
        && labels warm = labels cold
      then begin
        incr exercised;
        (* Per-rung: every warm attempt beyond the baseline searches less
           than its cold counterpart. *)
        List.iteri
          (fun i (w, c) ->
            if i >= 1 then begin
              Alcotest.(check bool)
                (Printf.sprintf "seed %d rung %d (%s): warm expands less"
                   seed (i + 1) w.Compile.attempt_label)
                true
                (w.Compile.attempt_expansions < c.Compile.attempt_expansions);
              Alcotest.(check bool)
                (Printf.sprintf "seed %d rung %d: ledger replayed" seed (i + 1))
                true
                (w.Compile.attempt_reused > 0)
            end)
          (List.combine warm.Compile.attempts cold.Compile.attempts);
        (* Aggregate, via the observability counters. *)
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: total reroute.expansions lower" seed)
          true
          (Sink.counter obs_warm "reroute.expansions"
          < Sink.counter obs_cold "reroute.expansions");
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: reroute.reused counted" seed)
          true
          (Sink.counter obs_warm "reroute.reused" >= 1);
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: cold never reuses" seed)
          true
          (Sink.counter obs_cold "reroute.reused" = 0);
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: reused transports reported" seed)
          true
          (warm.Compile.degradation.Compile.reused_transports >= 1
          && cold.Compile.degradation.Compile.reused_transports = 0)
      end)
    [ 517; 518; 519; 523 ];
  Alcotest.(check bool) "retry-exercising seeds found" true (!exercised >= 2)

(* ---- Residue collection: one failed attempt names every culprit. ---- *)

let test_residue_collected () =
  let nl = design ~seed:517 ~modules:30 ~domains:3 in
  let prepared = Compile.prepare ~options:tight_options nl in
  let ctx = Reroute.create () in
  (match Compile.route ~reroute:ctx prepared tight_options.Compile.route with
  | _ -> Alcotest.fail "expected the tight baseline to be unroutable"
  | exception Tiers.Unroutable _ -> ());
  let fails = Reroute.failures ctx in
  Alcotest.(check bool) "residue recorded" true (List.length fails >= 1);
  Alcotest.(check bool) "ledger keeps routable transports" true
    (Reroute.ledger_size ctx > List.length fails);
  (* The residue keys must not sit in the ledger as routed entries. *)
  List.iter
    (fun (k, _) ->
      Alcotest.(check bool) "failed key not in ledger" true
        (Reroute.lookup ctx k = None))
    fails

(* ---- Random rip-up / reroute keeps the schedule verifier-clean. ---- *)

(* Axiom 2 (equal-delay MERGE) and Observation 2 (hold safety) are exactly
   what the static verifier checks; after any random subset of the ledger
   is ripped and the design rerouted warm, the result must still verify
   and keep the frame length of the from-scratch schedule. *)
let prop_random_ripup_stays_clean =
  QCheck.Test.make ~name:"random rip-up/reroute keeps schedules clean"
    ~count:12
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let nl = design ~seed:(200 + (seed mod 17)) ~modules:14 ~domains:3 in
      let options = { tight_options with Compile.max_block_weight = 48 } in
      let route_opts =
        { Tiers.default_options with Tiers.max_extra_slots = 64 }
      in
      match Compile.prepare ~options nl with
      | exception Compile.Compile_error _ -> QCheck.assume_fail ()
      | prepared -> (
          let ctx = Reroute.create () in
          match Compile.route ~reroute:ctx prepared route_opts with
          | exception Tiers.Unroutable _ -> QCheck.assume_fail ()
          | s1 ->
              let rng = Random.State.make [| seed |] in
              let keys = List.sort compare (Reroute.keys ctx) in
              List.iter
                (fun k ->
                  if Random.State.bool rng then Reroute.rip ctx k)
                keys;
              let s2 = Compile.route ~reroute:ctx prepared route_opts in
              let report = Compile.verify_schedule prepared s2 in
              if not (Verify.is_clean report) then
                QCheck.Test.fail_reportf
                  "rerouted schedule fails verification:@\n%a"
                  Verify.pp_report report;
              if s2.Schedule.length <> s1.Schedule.length then
                QCheck.Test.fail_reportf
                  "frame length drifted after rip-up: %d -> %d"
                  s1.Schedule.length s2.Schedule.length;
              true))

(* ---- Forced-hard residue: verifier accepts per-net fallback. ---- *)

let test_forced_hard_verifies () =
  let nl = design ~seed:517 ~modules:30 ~domains:3 in
  let r =
    Compile.compile_resilient ~options:tight_options ~max_retries:0
      ~fallback_hard:true nl
  in
  Alcotest.(check bool) "fallback recovered" true (Compile.succeeded r);
  Alcotest.(check bool) "hard residue present" true
    (r.Compile.degradation.Compile.fallback_nets > 0);
  check_verifier_clean "per-net fallback" r

let suite =
  [
    Alcotest.test_case "differential: warm == cold over 51 designs" `Slow
      test_differential_many_seeds;
    Alcotest.test_case "differential: warm == cold on workload families" `Slow
      test_differential_families;
    Alcotest.test_case "warm reuse expands strictly less" `Quick
      test_warm_expansions_lower;
    Alcotest.test_case "failed attempt collects whole residue" `Quick
      test_residue_collected;
    Alcotest.test_case "per-net forced-hard schedule verifies" `Quick
      test_forced_hard_verifies;
    QCheck_alcotest.to_alcotest prop_random_ripup_stays_clean;
  ]
