open Msched_netlist
module B = Netlist.Builder

let build_simple () =
  let b = B.create ~design_name:"simple" () in
  let d = B.add_domain b "clk" in
  let i = B.add_input b ~name:"i" ~domain:d () in
  let g = B.add_gate b ~name:"g" Cell.Not [ i ] in
  let q = B.add_flip_flop b ~name:"q" ~data:g ~clock:(Cell.Dom_clock d) () in
  let (_ : Ids.Cell.t) = B.add_output b ~name:"o" q in
  (B.finalize b, d, i, g, q)

let test_counts () =
  let nl, _, _, _, _ = build_simple () in
  Alcotest.(check int) "domains" 1 (Netlist.num_domains nl);
  Alcotest.(check int) "cells" 4 (Netlist.num_cells nl);
  Alcotest.(check int) "nets" 3 (Netlist.num_nets nl)

let test_driver_fanout () =
  let nl, _, i, g, q = build_simple () in
  let driver_of n = (Netlist.driver nl n).Cell.name in
  Alcotest.(check string) "i driver" "i" (driver_of i);
  Alcotest.(check string) "g driver" "g" (driver_of g);
  Alcotest.(check string) "q driver" "q" (driver_of q);
  Alcotest.(check int) "i fanouts" 1 (Array.length (Netlist.fanouts nl i));
  (* q feeds the output cell *)
  Alcotest.(check int) "q fanouts" 1 (Array.length (Netlist.fanouts nl q))

let test_undriven_rejected () =
  let b = B.create () in
  let d = B.add_domain b "clk" in
  let dangling = B.fresh_net b ~name:"dangling" () in
  let (_ : Ids.Net.t) =
    B.add_flip_flop b ~data:dangling ~clock:(Cell.Dom_clock d) ()
  in
  match B.finalize b with
  | exception Netlist.Invalid (Netlist.Undriven_net n) ->
      Alcotest.(check int) "the dangling net" (Ids.Net.to_int dangling)
        (Ids.Net.to_int n)
  | exception e -> raise e
  | _ -> Alcotest.fail "expected Undriven_net"

let test_double_drive_rejected () =
  let b = B.create () in
  let n = B.fresh_net b () in
  let i = B.add_input b () in
  B.add_gate_to b Cell.Buf [ i ] ~output:n;
  match B.add_gate_to b Cell.Buf [ i ] ~output:n with
  | exception Netlist.Invalid (Netlist.Multiple_drivers _) -> ()
  | exception e -> raise e
  | () -> Alcotest.fail "expected Multiple_drivers"

let test_unknown_domain_rejected () =
  let b = B.create () in
  let i = B.add_input b () in
  let (_ : Ids.Net.t) =
    B.add_flip_flop b ~data:i ~clock:(Cell.Dom_clock (Ids.Dom.of_int 5)) ()
  in
  match B.finalize b with
  | exception Netlist.Invalid (Netlist.Unknown_domain _) -> ()
  | exception e -> raise e
  | _ -> Alcotest.fail "expected Unknown_domain"

let test_clock_source_idempotent () =
  let b = B.create () in
  let d = B.add_domain b "clk" in
  let c1 = B.add_clock_source b d in
  let c2 = B.add_clock_source b d in
  Alcotest.(check int) "same net" (Ids.Net.to_int c1) (Ids.Net.to_int c2);
  let nl = B.finalize b in
  Alcotest.(check (option int))
    "registered" (Some (Ids.Net.to_int c1))
    (Option.map Ids.Net.to_int (Netlist.clock_source_net nl d))

let test_trigger_fanout_recorded () =
  (* A net-triggered latch's gate net lists a Trigger_pin fanout. *)
  let b = B.create () in
  let d = B.add_domain b "clk" in
  let data = B.add_input b ~domain:d () in
  let gate = B.add_input b ~domain:d () in
  let (_ : Ids.Net.t) = B.add_latch b ~data ~gate:(Cell.Net_trigger gate) () in
  let nl = B.finalize b in
  let fanouts = Netlist.fanouts nl gate in
  Alcotest.(check bool) "trigger fanout" true
    (Array.exists
       (fun (tm : Netlist.term) -> tm.Netlist.term_pin = Netlist.Trigger_pin)
       fanouts)

let test_dom_clock_trigger_fanout_on_clock_source () =
  (* With a materialized clock source, Dom_clock triggers appear in its
     fanout so analyses see the dependency. *)
  let b = B.create () in
  let d = B.add_domain b "clk" in
  let clk = B.add_clock_source b d in
  let i = B.add_input b ~domain:d () in
  let (_ : Ids.Net.t) = B.add_flip_flop b ~data:i ~clock:(Cell.Dom_clock d) () in
  let nl = B.finalize b in
  Alcotest.(check bool) "clock fanout has trigger" true
    (Array.exists
       (fun (tm : Netlist.term) -> tm.Netlist.term_pin = Netlist.Trigger_pin)
       (Netlist.fanouts nl clk))

let test_ram_arity () =
  let b = B.create () in
  let d = B.add_domain b "clk" in
  let i = B.add_input b ~domain:d () in
  match
    B.add_ram b ~addr_bits:2 ~write_enable:i ~write_data:i ~write_addr:[ i ]
      ~read_addr:[ i; i ] ~clock:(Cell.Dom_clock d) ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected address width mismatch"

let test_term_input_net () =
  let nl, _, i, g, _ = build_simple () in
  let tm = (Netlist.fanouts nl i).(0) in
  Alcotest.(check int) "term input" (Ids.Net.to_int i)
    (Ids.Net.to_int (Netlist.term_input_net nl tm));
  let tm_g = (Netlist.fanouts nl g).(0) in
  Alcotest.(check int) "ff data input" (Ids.Net.to_int g)
    (Ids.Net.to_int (Netlist.term_input_net nl tm_g))

let suite =
  [
    Alcotest.test_case "counts" `Quick test_counts;
    Alcotest.test_case "driver/fanout" `Quick test_driver_fanout;
    Alcotest.test_case "undriven rejected" `Quick test_undriven_rejected;
    Alcotest.test_case "double drive rejected" `Quick test_double_drive_rejected;
    Alcotest.test_case "unknown domain rejected" `Quick test_unknown_domain_rejected;
    Alcotest.test_case "clock source idempotent" `Quick test_clock_source_idempotent;
    Alcotest.test_case "trigger fanout recorded" `Quick test_trigger_fanout_recorded;
    Alcotest.test_case "dom-clock fanout on clock source" `Quick
      test_dom_clock_trigger_fanout_on_clock_source;
    Alcotest.test_case "ram arity" `Quick test_ram_arity;
    Alcotest.test_case "term input net" `Quick test_term_input_net;
  ]
