(* Observability layer: span nesting, sink metrics, exporter
   well-formedness (checked with a tiny hand-rolled JSON parser — the repo
   deliberately has no JSON dependency), and pipeline integration. *)

module Sink = Msched_obs.Sink
module Export = Msched_obs.Export
module Tiers = Msched_route.Tiers
module Design_gen = Msched_gen.Design_gen

(* ------------------------------------------------------------------ *)
(* Minimal recursive-descent JSON parser, enough for our own exporters. *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list

exception Bad_json of string

let parse_json text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let next () =
    match peek () with
    | Some c ->
        incr pos;
        c
    | None -> fail "unexpected end"
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
    | _ -> ()
  in
  let expect c = if next () <> c then fail (Printf.sprintf "expected %C" c) in
  let literal word value =
    String.iter expect word;
    value
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' ->
          (match next () with
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'u' ->
              let hex = really_sub 4 in
              Buffer.add_string b
                (Printf.sprintf "\\u%s" hex) (* kept escaped; ASCII input *)
          | c -> Buffer.add_char b c);
          go ()
      | c ->
          Buffer.add_char b c;
          go ()
    and really_sub k =
      if !pos + k > n then fail "truncated escape";
      let s = String.sub text !pos k in
      pos := !pos + k;
      s
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      incr pos
    done;
    if start = !pos then fail "empty number";
    J_num (float_of_string (String.sub text start (!pos - start)))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then (
          incr pos;
          J_obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> members ((k, v) :: acc)
            | '}' -> J_obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then (
          incr pos;
          J_list [])
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> elems (v :: acc)
            | ']' -> J_list (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elems []
    | Some '"' -> J_str (parse_string ())
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some 'n' -> literal "null" J_null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member name = function
  | J_obj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> v
      | None -> raise (Bad_json ("missing member " ^ name)))
  | _ -> raise (Bad_json "not an object")

let to_list = function
  | J_list l -> l
  | _ -> raise (Bad_json "not a list")

let to_str = function
  | J_str s -> s
  | _ -> raise (Bad_json "not a string")

let to_num = function
  | J_num f -> f
  | _ -> raise (Bad_json "not a number")

(* ------------------------------------------------------------------ *)

(* Deterministic sink driven by a settable fake clock. *)
let fake_sink () =
  let t = ref 0.0 in
  (Sink.create ~clock:(fun () -> !t) (), t)

let test_span_nesting () =
  let obs, t = fake_sink () in
  Sink.span obs "outer" (fun () ->
      t := 0.001;
      Sink.span obs "inner" ~args:[ ("k", "v") ] (fun () -> t := 0.003);
      t := 0.004);
  Alcotest.(check (list string)) "all closed" [] (Sink.open_spans obs);
  match Sink.spans obs with
  | [ outer; inner ] ->
      Alcotest.(check string) "outer name" "outer" outer.Sink.sp_name;
      Alcotest.(check string) "inner name" "inner" inner.Sink.sp_name;
      Alcotest.(check (option int)) "outer is root" None outer.Sink.sp_parent;
      Alcotest.(check (option int))
        "inner nested in outer" (Some outer.Sink.sp_id) inner.Sink.sp_parent;
      Alcotest.(check int) "outer depth" 0 outer.Sink.sp_depth;
      Alcotest.(check int) "inner depth" 1 inner.Sink.sp_depth;
      Alcotest.(check int) "outer begin" 0 outer.Sink.sp_begin_us;
      Alcotest.(check int) "outer dur" 4000 outer.Sink.sp_dur_us;
      Alcotest.(check int) "inner begin" 1000 inner.Sink.sp_begin_us;
      Alcotest.(check int) "inner dur" 2000 inner.Sink.sp_dur_us;
      Alcotest.(check (list (pair string string)))
        "inner args" [ ("k", "v") ] inner.Sink.sp_args
  | spans ->
      Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_span_closed_on_raise () =
  let obs, _ = fake_sink () in
  (try Sink.span obs "boom" (fun () -> failwith "expected") with
  | Failure _ -> ());
  Alcotest.(check (list string)) "closed after raise" [] (Sink.open_spans obs);
  Alcotest.(check int) "span recorded" 1 (List.length (Sink.spans obs))

let test_null_sink_noop () =
  Alcotest.(check bool) "null disabled" false (Sink.enabled Sink.null);
  let r = Sink.span Sink.null "x" (fun () -> 42) in
  Alcotest.(check int) "span passes value through" 42 r;
  Sink.add Sink.null "c" 3;
  Sink.gauge Sink.null "g" 1.0;
  Sink.observe Sink.null "h" 7;
  Alcotest.(check int) "no counter" 0 (Sink.counter Sink.null "c");
  Alcotest.(check (list (pair string int))) "no counters" [] (Sink.counters Sink.null);
  Alcotest.(check int) "no spans" 0 (List.length (Sink.spans Sink.null));
  Alcotest.(check (list int)) "no hist" [] (Sink.hist_values Sink.null "h")

let test_metrics () =
  let obs, _ = fake_sink () in
  Sink.add obs "c" 2;
  Sink.incr obs "c";
  Sink.gauge obs "g" 1.5;
  Sink.gauge obs "g" 2.5;
  List.iter (Sink.observe obs "h") [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
  Alcotest.(check int) "counter" 3 (Sink.counter obs "c");
  Alcotest.(check (list (pair string int)))
    "counters sorted" [ ("c", 3) ] (Sink.counters obs);
  (match Sink.gauges obs with
  | [ ("g", v) ] -> Alcotest.(check (float 1e-9)) "gauge latest" 2.5 v
  | _ -> Alcotest.fail "gauges");
  match Sink.histograms obs with
  | [ ("h", h) ] ->
      Alcotest.(check int) "count" 10 h.Sink.hs_count;
      Alcotest.(check int) "sum" 55 h.Sink.hs_sum;
      Alcotest.(check int) "min" 1 h.Sink.hs_min;
      Alcotest.(check int) "max" 10 h.Sink.hs_max;
      Alcotest.(check int) "p50" 6 h.Sink.hs_p50;
      Alcotest.(check int) "p90" 10 h.Sink.hs_p90;
      Alcotest.(check (float 1e-9)) "mean" 5.5 h.Sink.hs_mean
  | _ -> Alcotest.fail "histograms"

let test_json_round_trip () =
  let obs, t = fake_sink () in
  Sink.span obs "a \"quoted\"\nname" (fun () ->
      t := 0.002;
      Sink.span obs "b" (fun () -> ()));
  Sink.add obs "cnt" 5;
  Sink.gauge obs "gau" 1.25;
  List.iter (Sink.observe obs "his") [ 3; 4 ];
  let doc = parse_json (Export.json_string obs) in
  Alcotest.(check string)
    "schema" "msched-obs-1"
    (to_str (member "schema" doc));
  let spans = to_list (member "spans" doc) in
  Alcotest.(check int) "two spans" 2 (List.length spans);
  let s0 = List.nth spans 0 in
  Alcotest.(check string)
    "escaped name survives" "a \"quoted\"\nname"
    (to_str (member "name" s0));
  Alcotest.(check (float 1e-9)) "root id" 0.0 (to_num (member "id" s0));
  Alcotest.(check bool) "root parent null" true (member "parent" s0 = J_null);
  Alcotest.(check (float 1e-9))
    "counter value" 5.0
    (to_num (member "cnt" (member "counters" doc)));
  Alcotest.(check (float 1e-9))
    "gauge value" 1.25
    (to_num (member "gau" (member "gauges" doc)));
  let h = member "his" (member "histograms" doc) in
  Alcotest.(check (float 1e-9)) "hist count" 2.0 (to_num (member "count" h));
  Alcotest.(check (float 1e-9)) "hist sum" 7.0 (to_num (member "sum" h))

let test_chrome_trace_well_formed () =
  let obs, t = fake_sink () in
  Sink.span obs "root" (fun () -> t := 0.005);
  Sink.add obs "cnt" 9;
  let doc = parse_json (Export.chrome_trace_string obs) in
  let events = to_list (member "traceEvents" doc) in
  Alcotest.(check bool) "non-empty" true (List.length events >= 3);
  let ph e = to_str (member "ph" e) in
  Alcotest.(check string) "metadata first" "M" (ph (List.hd events));
  let xs = List.filter (fun e -> ph e = "X") events in
  Alcotest.(check int) "one complete event" 1 (List.length xs);
  let x = List.hd xs in
  Alcotest.(check string) "span name" "root" (to_str (member "name" x));
  Alcotest.(check (float 1e-9)) "dur" 5000.0 (to_num (member "dur" x));
  let cs = List.filter (fun e -> ph e = "C") events in
  Alcotest.(check int) "one counter event" 1 (List.length cs);
  Alcotest.(check (float 1e-9))
    "counter value" 9.0
    (to_num (member "value" (member "args" (List.hd cs))))

let test_null_sink_exports_empty () =
  let doc = parse_json (Export.json_string Sink.null) in
  Alcotest.(check int) "no spans" 0 (List.length (to_list (member "spans" doc)));
  let trace = parse_json (Export.chrome_trace_string Sink.null) in
  Alcotest.(check int)
    "metadata only" 1
    (List.length (to_list (member "traceEvents" trace)))

(* ------------------------------------------------------------------ *)
(* Pipeline integration. *)

let compile_design ~seed obs =
  let d =
    Design_gen.random_multidomain ~seed ~domains:3 ~modules:25
      ~mts_fraction:0.25 ()
  in
  let options =
    {
      Msched.Compile.default_options with
      Msched.Compile.max_block_weight = 16;
      obs;
    }
  in
  Msched.Compile.compile ~options d.Design_gen.netlist

let documented_phases =
  [
    "compile";
    "prepare";
    "domain-analysis";
    "mts-transform";
    "partition";
    "placement";
    "latch-analysis";
    "classification";
    "tiers";
    "verify";
  ]

let test_compile_records_phases () =
  let obs = Sink.create () in
  let (_ : Msched.Compile.compiled) = compile_design ~seed:7 obs in
  Alcotest.(check (list string)) "all spans closed" [] (Sink.open_spans obs);
  let names = List.map (fun s -> s.Sink.sp_name) (Sink.spans obs) in
  List.iter
    (fun phase ->
      Alcotest.(check bool)
        (Printf.sprintf "span %S recorded" phase)
        true (List.mem phase names))
    documented_phases;
  (* Scheduler sub-stages nest under "tiers". *)
  let spans = Sink.spans obs in
  let tiers =
    List.find (fun s -> s.Sink.sp_name = "tiers") spans
  in
  let reverse =
    List.find (fun s -> s.Sink.sp_name = "tiers.reverse-pass") spans
  in
  Alcotest.(check (option int))
    "reverse pass nested in tiers" (Some tiers.Sink.sp_id)
    reverse.Sink.sp_parent;
  Alcotest.(check bool)
    "verifier counted checks" true
    (Sink.counter obs "verify.links_checked" > 0);
  Alcotest.(check bool)
    "schedule length gauge set" true
    (List.mem_assoc "schedule.length" (Sink.gauges obs))

let test_forward_records_span () =
  let obs = Sink.create () in
  let d = Design_gen.fig1 () in
  let options =
    { Msched.Compile.default_options with Msched.Compile.max_block_weight = 8 }
  in
  let prepared = Msched.Compile.prepare ~options d.Design_gen.netlist in
  let (_ : Msched_route.Schedule.t) =
    Msched.Compile.route_forward ~obs prepared Tiers.default_options
  in
  let names = List.map (fun s -> s.Sink.sp_name) (Sink.spans obs) in
  Alcotest.(check bool) "forward span" true (List.mem "forward" names);
  Alcotest.(check bool)
    "forward pass span" true
    (List.mem "forward.forward-pass" names)

let test_counters_monotone_across_compiles () =
  let obs = Sink.create () in
  let snapshot = Hashtbl.create 64 in
  for seed = 1 to 10 do
    let (_ : Msched.Compile.compiled) = compile_design ~seed obs in
    List.iter
      (fun (name, v) ->
        let prev =
          Option.value ~default:0 (Hashtbl.find_opt snapshot name)
        in
        if v < prev then
          Alcotest.failf "counter %s went backwards after seed %d: %d < %d"
            name seed v prev;
        Hashtbl.replace snapshot name v)
      (Sink.counters obs)
  done;
  Alcotest.(check bool)
    "accumulated pathfinder searches" true
    (Sink.counter obs "pathfind.searches" > 0);
  Alcotest.(check bool)
    "accumulated transports" true
    (Sink.counter obs "sched.transports" > 0)

let suite =
  [
    Alcotest.test_case "span nesting with fake clock" `Quick test_span_nesting;
    Alcotest.test_case "span closed on raise" `Quick test_span_closed_on_raise;
    Alcotest.test_case "null sink is a no-op" `Quick test_null_sink_noop;
    Alcotest.test_case "counters, gauges, histograms" `Quick test_metrics;
    Alcotest.test_case "JSON round-trip" `Quick test_json_round_trip;
    Alcotest.test_case "chrome trace well-formed" `Quick
      test_chrome_trace_well_formed;
    Alcotest.test_case "null sink exports empty docs" `Quick
      test_null_sink_exports_empty;
    Alcotest.test_case "compile records documented phases" `Quick
      test_compile_records_phases;
    Alcotest.test_case "forward scheduler records spans" `Quick
      test_forward_records_span;
    Alcotest.test_case "counters monotone across 10 compiles" `Quick
      test_counters_monotone_across_compiles;
  ]
