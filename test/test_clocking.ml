open Msched_netlist
module Clock = Msched_clocking.Clock
module Edges = Msched_clocking.Edges
module Async_gen = Msched_clocking.Async_gen

let d0 = Ids.Dom.of_int 0
let d1 = Ids.Dom.of_int 1

let test_edge_times () =
  let c = Clock.make d0 ~name:"c" ~period_ps:1000 ~phase_ps:100 in
  Alcotest.(check int) "rise 0" 100 (Clock.rising_edge_time c 0);
  Alcotest.(check int) "rise 3" 3100 (Clock.rising_edge_time c 3);
  Alcotest.(check int) "fall 0" 600 (Clock.falling_edge_time c 0)

let test_level () =
  let c = Clock.make d0 ~name:"c" ~period_ps:1000 ~phase_ps:100 in
  Alcotest.(check bool) "before first rise" false (Clock.level_at c 50);
  Alcotest.(check bool) "high after rise" true (Clock.level_at c 101);
  Alcotest.(check bool) "low after fall" false (Clock.level_at c 700);
  Alcotest.(check bool) "high next period" true (Clock.level_at c 1200)

let test_duty () =
  let c = Clock.make ~duty:(1, 4) d0 ~name:"c" ~period_ps:1000 in
  Alcotest.(check int) "fall at 1/4" 250 (Clock.falling_edge_time c 0)

let test_edges_before () =
  let c = Clock.make d0 ~name:"c" ~period_ps:1000 ~phase_ps:100 in
  Alcotest.(check int) "none before phase" 0 (Clock.rising_edges_before c 100);
  Alcotest.(check int) "one" 1 (Clock.rising_edges_before c 101);
  Alcotest.(check int) "three" 3 (Clock.rising_edges_before c 2200)

let test_invalid () =
  Alcotest.check_raises "zero period"
    (Invalid_argument "Clock.make: period must be positive") (fun () ->
      ignore (Clock.make d0 ~name:"c" ~period_ps:0));
  Alcotest.check_raises "bad duty" (Invalid_argument "Clock.make: duty must be in (0, 1)")
    (fun () -> ignore (Clock.make ~duty:(5, 4) d0 ~name:"c" ~period_ps:100))

let test_stream_sorted () =
  let c0 = Clock.make d0 ~name:"a" ~period_ps:700 ~phase_ps:13 in
  let c1 = Clock.make d1 ~name:"b" ~period_ps:1100 ~phase_ps:57 in
  let edges = Edges.stream [ c0; c1 ] ~horizon_ps:10_000 in
  let rec check_sorted = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "sorted" true (a.Edges.time_ps <= b.Edges.time_ps);
        check_sorted rest
    | [ _ ] | [] -> ()
  in
  check_sorted edges;
  Alcotest.(check bool) "nonempty" true (edges <> [])

let test_stream_counts () =
  let c0 = Clock.make d0 ~name:"a" ~period_ps:1000 ~phase_ps:0 in
  let edges = Edges.stream [ c0 ] ~horizon_ps:3000 in
  let rises = Edges.rising_only edges in
  Alcotest.(check int) "3 rises" 3 (List.length rises);
  let counts = Edges.count_by_domain ~num_domains:1 edges in
  Alcotest.(check int) "count" 3 counts.(0);
  (* indices are consecutive *)
  List.iteri
    (fun i e -> Alcotest.(check int) "index" i e.Edges.index)
    rises

let test_async_gen_distinct_periods () =
  let clocks = Async_gen.clocks ~seed:1 [ d0; d1; Ids.Dom.of_int 2 ] in
  let periods = List.map (fun c -> c.Clock.period_ps) clocks in
  Alcotest.(check int) "three clocks" 3 (List.length clocks);
  Alcotest.(check int) "distinct" 3 (List.length (List.sort_uniq compare periods))

let test_async_gen_deterministic () =
  let a = Async_gen.clocks ~seed:5 [ d0; d1 ] in
  let b = Async_gen.clocks ~seed:5 [ d0; d1 ] in
  List.iter2
    (fun x y ->
      Alcotest.(check int) "same period" x.Clock.period_ps y.Clock.period_ps;
      Alcotest.(check int) "same phase" x.Clock.phase_ps y.Clock.phase_ps)
    a b

let suite =
  [
    Alcotest.test_case "edge times" `Quick test_edge_times;
    Alcotest.test_case "level" `Quick test_level;
    Alcotest.test_case "duty" `Quick test_duty;
    Alcotest.test_case "edges before" `Quick test_edges_before;
    Alcotest.test_case "invalid clocks" `Quick test_invalid;
    Alcotest.test_case "stream sorted" `Quick test_stream_sorted;
    Alcotest.test_case "stream counts" `Quick test_stream_counts;
    Alcotest.test_case "async distinct periods" `Quick test_async_gen_distinct_periods;
    Alcotest.test_case "async deterministic" `Quick test_async_gen_deterministic;
  ]
