(* GALS & handshake workload families (ISSUE 6 headline suite).

   The paper validates on two proprietary ASICs; these families cover the
   asynchronous topologies the related work says matter — pausible-clock
   islands behind handshake wrappers (arXiv 0802.3441), dense pairwise
   domain crossings, and clock-gated memory fabrics (arXiv 0710.4711).
   This suite pins down:

   - per-family structural invariants: domain counts, realized crossing
     density, MTS fraction within tolerance, synchronizer depth;
   - seed determinism as byte-identical serialized netlists, across the
     whole generator API including the legacy families;
   - compile+verify across a parameter sweep, in both virtual and hard
     MTS routing modes;
   - qcheck properties that every generated design is verifier-clean, and
     that bad parameters or malformed specs fail with a structured [E_*]
     diagnostic — never an unstructured exception;
   - the generator-spec grammar shared by the CLI and bench. *)

open Msched_netlist
module Design_gen = Msched_gen.Design_gen
module DA = Msched_mts.Domain_analysis
module Tiers = Msched_route.Tiers
module Schedule = Msched_route.Schedule
module Verify = Msched_check.Verify
module Diag = Msched_diag.Diag

(* ------------------------------------------------------------------ *)
(* Helpers *)

let count_cells nl pred =
  let n = ref 0 in
  Netlist.iter_cells nl (fun c -> if pred c then incr n);
  !n

let count_mts_nets nl =
  let da = DA.compute nl in
  let n = ref 0 in
  Netlist.iter_nets nl (fun net _ -> if DA.is_mts_net da net then incr n);
  !n

let name_contains sub (c : Cell.t) =
  let len = String.length sub and n = String.length c.Cell.name in
  let rec go i = i + len <= n && (String.sub c.Cell.name i len = sub || go (i + 1)) in
  go 0

let compile_and_verify ?(weight = 48) label nl =
  let options =
    { Msched.Compile.default_options with Msched.Compile.max_block_weight = weight }
  in
  let prepared = Msched.Compile.prepare ~options nl in
  List.iter
    (fun (mode, ropts) ->
      let sched = Msched.Compile.route prepared ropts in
      let r = Msched.Compile.verify_schedule prepared sched in
      Alcotest.(check bool)
        (Format.asprintf "%s %s verifier-clean: %a" label mode Verify.pp_report r)
        true (Verify.is_clean r);
      Alcotest.(check bool)
        (Printf.sprintf "%s %s schedule non-empty" label mode)
        true
        (sched.Schedule.length > 0))
    [ ("virtual", Tiers.default_options); ("hard", Tiers.hard_options) ]

(* ------------------------------------------------------------------ *)
(* Structural invariants *)

let test_gals_structure () =
  let islands = 6 and island_size = 3 and wrapper_depth = 3 in
  let d = Design_gen.gals_islands ~islands ~island_size ~wrapper_depth () in
  let nl = d.Design_gen.netlist in
  Alcotest.(check int) "one domain per island" islands (Netlist.num_domains nl);
  Alcotest.(check int) "modules = islands * island_size"
    (islands * island_size) d.Design_gen.modules;
  Alcotest.(check int) "all CDC via synchronizers: no MTS modules" 0
    d.Design_gen.mts_modules;
  Alcotest.(check int) "no MTS nets" 0 (count_mts_nets nl);
  (* One ring edge per island, each with a depth-k request synchronizer. *)
  Alcotest.(check int) "req synchronizer chains are depth-k"
    (islands * wrapper_depth)
    (count_cells nl (name_contains "_req_sync"));
  (* Pausible clocks: one gating latch + one gated-clock AND per edge. *)
  Alcotest.(check int) "one gating latch per island"
    islands
    (count_cells nl (name_contains "_gate_latch"));
  let stats = Stats.compute nl in
  Alcotest.(check int) "gating latches are the only latches" islands
    stats.Stats.num_latches

let test_dense_structure () =
  let domains = 10 and density = 0.3 in
  let d = Design_gen.dense_crossing ~domains ~density () in
  let nl = d.Design_gen.netlist in
  let crossings = Design_gen.dense_crossing_count ~domains ~density in
  Alcotest.(check int) "domain count" domains (Netlist.num_domains nl);
  Alcotest.(check int) "crossing count realized exactly" crossings
    d.Design_gen.mts_modules;
  Alcotest.(check int) "modules = domains + crossings" (domains + crossings)
    d.Design_gen.modules;
  (* Each crossing contributes exactly one MTS latch. *)
  let stats = Stats.compute nl in
  Alcotest.(check int) "one MTS latch per crossing" crossings
    stats.Stats.num_latches;
  Alcotest.(check bool) "MTS nets present" true (count_mts_nets nl > 0);
  (* The realized MTS fraction tracks the requested density. *)
  let frac =
    float_of_int d.Design_gen.mts_modules /. float_of_int d.Design_gen.modules
  in
  let expected =
    float_of_int crossings /. float_of_int (domains + crossings)
  in
  Alcotest.(check (float 1e-9)) "MTS fraction within tolerance" expected frac;
  (* Density drives it far above the paper's designs (Design2: ~4.3%). *)
  Alcotest.(check bool) "MTS fraction >> paper designs" true (frac > 0.2)

let test_dense_crossing_count () =
  (* Bounds and monotonicity of the density knob. *)
  Alcotest.(check int) "density 0 -> no crossings" 0
    (Design_gen.dense_crossing_count ~domains:8 ~density:0.0);
  Alcotest.(check int) "density 1 -> complete graph" 28
    (Design_gen.dense_crossing_count ~domains:8 ~density:1.0);
  Alcotest.(check int) "tiny density still crosses once" 1
    (Design_gen.dense_crossing_count ~domains:8 ~density:0.001);
  let prev = ref 0 in
  List.iter
    (fun density ->
      let c = Design_gen.dense_crossing_count ~domains:12 ~density in
      Alcotest.(check bool) "monotone in density" true (c >= !prev);
      prev := c)
    [ 0.0; 0.1; 0.25; 0.5; 0.75; 1.0 ]

let test_fabric_structure () =
  let banks = 7 and domains = 4 in
  let d = Design_gen.gated_memory_fabric ~banks ~domains () in
  let nl = d.Design_gen.netlist in
  let stats = Stats.compute nl in
  Alcotest.(check int) "domain count" domains (Netlist.num_domains nl);
  Alcotest.(check int) "one RAM per bank" banks stats.Stats.num_rams;
  Alcotest.(check int) "one gating latch per bank" banks
    stats.Stats.num_latches;
  Alcotest.(check int) "every bank is an MTS module" banks
    d.Design_gen.mts_modules;
  Alcotest.(check int) "modules = domains + banks" (domains + banks)
    d.Design_gen.modules;
  (* The cross-domain gated write clocks make real MTS nets. *)
  Alcotest.(check bool) "MTS nets present" true (count_mts_nets nl > 0)

(* ------------------------------------------------------------------ *)
(* Determinism: byte-identical serialized netlists for same-seed calls,
   across the whole generator API (satellite 3). *)

let all_family_thunks =
  [
    ("fig1", fun () -> Design_gen.fig1 ());
    ("fig3", fun () -> Design_gen.fig3_latch ());
    ("handshake", fun () -> Design_gen.handshake ());
    ( "random",
      fun () ->
        Design_gen.random_multidomain ~seed:7 ~domains:3 ~modules:18
          ~mts_fraction:0.25 ~mts_ffs:1 ~xwrite_rams:1 () );
    ("design1", fun () -> Design_gen.design1_like ~seed:5 ~scale:0.02 ());
    ("design2", fun () -> Design_gen.design2_like ~seed:5 ~scale:0.02 ());
    ( "gals",
      fun () ->
        Design_gen.gals_islands ~seed:9 ~islands:5 ~island_size:2
          ~wrapper_depth:2 () );
    ( "dense",
      fun () -> Design_gen.dense_crossing ~seed:9 ~domains:8 ~density:0.4 () );
    ( "fabric",
      fun () -> Design_gen.gated_memory_fabric ~seed:9 ~banks:5 ~domains:3 () );
  ]

let test_determinism_all_families () =
  List.iter
    (fun (label, thunk) ->
      let a = Serial.to_string (thunk ()).Design_gen.netlist in
      let b = Serial.to_string (thunk ()).Design_gen.netlist in
      Alcotest.(check bool)
        (label ^ ": same seed serializes byte-identically")
        true (String.equal a b))
    all_family_thunks

let test_seed_sensitivity () =
  (* Different seeds must actually change the sampled structure somewhere
     (guards against a family ignoring its seed). *)
  let differs a b = not (String.equal a b) in
  Alcotest.(check bool) "gals seed matters" true
    (differs
       (Serial.to_string
          (Design_gen.gals_islands ~seed:1 ~islands:4 ()).Design_gen.netlist)
       (Serial.to_string
          (Design_gen.gals_islands ~seed:2 ~islands:4 ()).Design_gen.netlist));
  Alcotest.(check bool) "dense seed matters" true
    (differs
       (Serial.to_string
          (Design_gen.dense_crossing ~seed:1 ~domains:8 ~density:0.3 ())
            .Design_gen.netlist)
       (Serial.to_string
          (Design_gen.dense_crossing ~seed:2 ~domains:8 ~density:0.3 ())
            .Design_gen.netlist));
  Alcotest.(check bool) "fabric seed matters" true
    (differs
       (Serial.to_string
          (Design_gen.gated_memory_fabric ~seed:1 ~banks:6 ()).Design_gen.netlist)
       (Serial.to_string
          (Design_gen.gated_memory_fabric ~seed:2 ~banks:6 ())
            .Design_gen.netlist))

(* ------------------------------------------------------------------ *)
(* Compile + verify across a parameter sweep *)

let test_sweep_compile_verify () =
  let sweep =
    [
      ("gals islands=3", (Design_gen.gals_islands ~islands:3 ~island_size:2 ()));
      ( "gals islands=8 depth=4",
        Design_gen.gals_islands ~islands:8 ~island_size:1 ~wrapper_depth:4 () );
      ( "dense domains=6 density=0.2",
        Design_gen.dense_crossing ~domains:6 ~density:0.2 () );
      ( "dense domains=12 density=0.5",
        Design_gen.dense_crossing ~domains:12 ~density:0.5 ~module_gates:2 () );
      ("fabric banks=3", Design_gen.gated_memory_fabric ~banks:3 ());
      ( "fabric banks=8 domains=4",
        Design_gen.gated_memory_fabric ~banks:8 ~domains:4 ~addr_bits:2 () );
    ]
  in
  List.iter
    (fun (label, d) -> compile_and_verify label d.Design_gen.netlist)
    sweep

(* ------------------------------------------------------------------ *)
(* qcheck: structured failure or verifier-clean — never an unstructured
   exception. *)

let family_of_seed seed =
  match seed mod 3 with
  | 0 ->
      Design_gen.gals_islands ~seed
        ~islands:(2 + (seed mod 5))
        ~island_size:(1 + (seed mod 3))
        ~wrapper_depth:(2 + (seed mod 2))
        ()
  | 1 ->
      Design_gen.dense_crossing ~seed
        ~domains:(2 + (seed mod 11))
        ~density:(0.1 +. (0.08 *. float_of_int (seed mod 10)))
        ()
  | _ ->
      Design_gen.gated_memory_fabric ~seed
        ~banks:(1 + (seed mod 9))
        ~domains:(2 + (seed mod 4))
        ()

let prop_families_clean_or_structured =
  QCheck.Test.make
    ~name:"families: verifier-clean or structured E_* diagnostic" ~count:18
    QCheck.(int_range 100 999)
    (fun seed ->
      match
        let d = family_of_seed seed in
        let prepared =
          Msched.Compile.prepare
            ~options:
              {
                Msched.Compile.default_options with
                Msched.Compile.max_block_weight = 32 + (seed mod 3 * 16);
              }
            d.Design_gen.netlist
        in
        let sched = Msched.Compile.route prepared Tiers.default_options in
        Msched.Compile.verify_schedule prepared sched
      with
      | r -> Verify.is_clean r
      | exception Diag.Fail _ -> true (* structured: acceptable *)
      | exception Tiers.Unroutable _ -> true (* structured: acceptable *))

let prop_bad_params_structured =
  (* Out-of-range generator parameters must raise Diag.Fail E_PARSE — never
     Invalid_argument, Failure, or an infinite clamp/loop. *)
  let structured f =
    match f () with
    | (_ : Design_gen.design) -> false
    | exception Diag.Fail d -> d.Diag.code = Diag.E_PARSE
    | exception _ -> false
  in
  QCheck.Test.make ~name:"bad generator params raise structured E_PARSE"
    ~count:12
    QCheck.(int_range 0 1_000_000)
    (fun salt ->
      List.for_all structured
        [
          (fun () ->
            Design_gen.random_multidomain ~domains:(-1 - (salt mod 5))
              ~modules:10 ~mts_fraction:0.2 ());
          (fun () ->
            Design_gen.random_multidomain ~domains:2 ~modules:10
              ~mts_fraction:(1.01 +. float_of_int (salt mod 7)) ());
          (fun () ->
            Design_gen.random_multidomain ~domains:2 ~modules:10
              ~mts_fraction:(-0.01) ());
          (fun () -> Design_gen.gals_islands ~islands:1 ());
          (fun () -> Design_gen.gals_islands ~islands:4 ~wrapper_depth:1 ());
          (fun () -> Design_gen.dense_crossing ~domains:1 ~density:0.5 ());
          (fun () -> Design_gen.dense_crossing ~domains:4 ~density:1.5 ());
          (fun () -> Design_gen.gated_memory_fabric ~banks:0 ());
          (fun () -> Design_gen.gated_memory_fabric ~banks:2 ~addr_bits:9 ());
        ])

(* ------------------------------------------------------------------ *)
(* The generator-spec grammar (satellite 1) *)

let test_spec_good () =
  (* Specs and direct constructor calls produce byte-identical netlists —
     the CLI and bench really share one parser. *)
  let same spec direct =
    match Design_gen.of_spec spec with
    | Error d -> Alcotest.failf "spec %S rejected: %a" spec Diag.pp d
    | Ok d ->
        Alcotest.(check bool)
          (Printf.sprintf "spec %S == direct call" spec)
          true
          (String.equal
             (Serial.to_string d.Design_gen.netlist)
             (Serial.to_string direct.Design_gen.netlist))
  in
  same "fig1" (Design_gen.fig1 ());
  same "handshake" (Design_gen.handshake ());
  same "design2:scale=0.03,seed=7" (Design_gen.design2_like ~seed:7 ~scale:0.03 ());
  same "random:domains=3,modules=15,mts=0.2,seed=4"
    (Design_gen.random_multidomain ~seed:4 ~domains:3 ~modules:15
       ~mts_fraction:0.2 ());
  same "gals:islands=5,size=2,depth=3,seed=8"
    (Design_gen.gals_islands ~seed:8 ~islands:5 ~island_size:2 ~wrapper_depth:3 ());
  same "dense:domains=9,density=0.4,seed=2"
    (Design_gen.dense_crossing ~seed:2 ~domains:9 ~density:0.4 ());
  same "fabric:banks=4,domains=3,addr=2,seed=3"
    (Design_gen.gated_memory_fabric ~seed:3 ~banks:4 ~domains:3 ~addr_bits:2 ())

let test_spec_bad () =
  let rejects spec =
    match Design_gen.of_spec spec with
    | Ok _ -> Alcotest.failf "spec %S should have been rejected" spec
    | Error d ->
        Alcotest.(check string)
          (Printf.sprintf "spec %S fails with E_PARSE" spec)
          "E_PARSE" (Diag.code_name d.Diag.code)
  in
  List.iter rejects
    [
      "nosuchfamily";
      "gals:" (* empty parameter list after ':' *);
      "gals:islands";
      "gals:islands=";
      "gals:islands=abc";
      "gals:bogus=3";
      "gals:islands=1";
      (* out-of-range: islands must be >= 2 *)
      "dense:domains=8,density=1.5";
      "fabric:banks=4,addr=99";
      "fig1:scale=2";
      (* fig1 takes no parameters *)
      "random:domains=0,modules=5,mts=0.2";
    ]

let test_spec_defaults () =
  (* A bare family name with defaults parses and generates. *)
  List.iter
    (fun spec ->
      match Design_gen.of_spec spec with
      | Ok d ->
          Alcotest.(check bool)
            (spec ^ " generates a non-empty netlist")
            true
            (Netlist.num_cells d.Design_gen.netlist > 0)
      | Error d -> Alcotest.failf "spec %S rejected: %a" spec Diag.pp d)
    [ "gals"; "dense"; "fabric"; "random"; "design1"; "design2" ]

let suite =
  [
    Alcotest.test_case "gals: structural invariants" `Quick test_gals_structure;
    Alcotest.test_case "dense: structural invariants" `Quick
      test_dense_structure;
    Alcotest.test_case "dense: crossing-count bounds" `Quick
      test_dense_crossing_count;
    Alcotest.test_case "fabric: structural invariants" `Quick
      test_fabric_structure;
    Alcotest.test_case "determinism: all families byte-identical" `Quick
      test_determinism_all_families;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "sweep: compile+verify both modes" `Slow
      test_sweep_compile_verify;
    Alcotest.test_case "spec: good specs match direct calls" `Quick
      test_spec_good;
    Alcotest.test_case "spec: malformed specs are E_PARSE" `Quick test_spec_bad;
    Alcotest.test_case "spec: family defaults" `Quick test_spec_defaults;
    QCheck_alcotest.to_alcotest prop_families_clean_or_structured;
    QCheck_alcotest.to_alcotest prop_bad_params_structured;
  ]
