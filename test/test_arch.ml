open Msched_netlist
module Topology = Msched_arch.Topology
module System = Msched_arch.System

let test_mesh_neighbors () =
  let t = Topology.make Topology.Mesh ~nx:3 ~ny:3 in
  let center = Topology.fpga_at t ~x:1 ~y:1 in
  Alcotest.(check int) "center degree" 4 (Topology.degree t center);
  let corner = Topology.fpga_at t ~x:0 ~y:0 in
  Alcotest.(check int) "corner degree" 2 (Topology.degree t corner)

let test_mesh_distance () =
  let t = Topology.make Topology.Mesh ~nx:4 ~ny:4 in
  let a = Topology.fpga_at t ~x:0 ~y:0 in
  let b = Topology.fpga_at t ~x:3 ~y:2 in
  Alcotest.(check int) "manhattan" 5 (Topology.distance t a b);
  Alcotest.(check int) "self" 0 (Topology.distance t a a)

let test_torus_wraps () =
  let t = Topology.make Topology.Torus ~nx:4 ~ny:4 in
  let a = Topology.fpga_at t ~x:0 ~y:0 in
  let b = Topology.fpga_at t ~x:3 ~y:0 in
  Alcotest.(check int) "wrap distance" 1 (Topology.distance t a b);
  Alcotest.(check int) "torus degree" 4 (Topology.degree t a)

let test_crossbar () =
  let t = Topology.make Topology.Crossbar ~nx:3 ~ny:2 in
  let a = Ids.Fpga.of_int 0 and b = Ids.Fpga.of_int 5 in
  Alcotest.(check int) "distance 1" 1 (Topology.distance t a b);
  Alcotest.(check int) "degree n-1" 5 (Topology.degree t a)

let test_make_for_count () =
  let t = Topology.make_for_count Topology.Mesh 10 in
  Alcotest.(check bool) "fits" true (Topology.num_fpgas t >= 10)

let test_system_channels () =
  let t = Topology.make Topology.Mesh ~nx:2 ~ny:2 in
  let sys = System.make t ~pins_per_fpga:40 in
  (* Every FPGA has degree 2; width = 40 / (2*2) = 10. *)
  Array.iter
    (fun (c : System.channel) ->
      Alcotest.(check int) "width" 10 c.System.width)
    (System.channels sys);
  (* 4 FPGAs x 2 out channels = 8 directed channels. *)
  Alcotest.(check int) "channel count" 8 (Array.length (System.channels sys));
  let f0 = Ids.Fpga.of_int 0 in
  Alcotest.(check int) "out channels" 2 (List.length (System.out_channels sys f0));
  Alcotest.(check bool) "pins <= budget" true
    (System.pins_used_per_fpga sys f0 <= 40)

let test_channel_between () =
  let t = Topology.make Topology.Mesh ~nx:2 ~ny:1 in
  let sys = System.make t ~pins_per_fpga:8 in
  let a = Ids.Fpga.of_int 0 and b = Ids.Fpga.of_int 1 in
  (match System.channel_between sys ~src:a ~dst:b with
  | Some c ->
      Alcotest.(check int) "src" 0 (Ids.Fpga.to_int c.System.src);
      Alcotest.(check int) "dst" 1 (Ids.Fpga.to_int c.System.dst)
  | None -> Alcotest.fail "expected channel");
  Alcotest.(check bool) "no self channel" true
    (System.channel_between sys ~src:a ~dst:a = None)

let test_zero_width_rejected () =
  let t = Topology.make Topology.Mesh ~nx:3 ~ny:3 in
  match System.make t ~pins_per_fpga:4 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected zero-width rejection"

let suite =
  [
    Alcotest.test_case "mesh neighbors" `Quick test_mesh_neighbors;
    Alcotest.test_case "mesh distance" `Quick test_mesh_distance;
    Alcotest.test_case "torus wraps" `Quick test_torus_wraps;
    Alcotest.test_case "crossbar" `Quick test_crossbar;
    Alcotest.test_case "make for count" `Quick test_make_for_count;
    Alcotest.test_case "system channels" `Quick test_system_channels;
    Alcotest.test_case "channel between" `Quick test_channel_between;
    Alcotest.test_case "zero width rejected" `Quick test_zero_width_rejected;
  ]
