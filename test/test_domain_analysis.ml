open Msched_netlist
module B = Netlist.Builder
module DA = Msched_mts.Domain_analysis
module Design_gen = Msched_gen.Design_gen

let doms_testable = Alcotest.testable (fun ppf s ->
    Ids.Dom.Set.iter (fun d -> Format.fprintf ppf "%a " Ids.Dom.pp d) s)
    Ids.Dom.Set.equal

let set l = Ids.Dom.Set.of_list (List.map Ids.Dom.of_int l)

let test_fig1_transitions () =
  let d = Design_gen.fig1 () in
  let nl = d.Design_gen.netlist in
  let da = DA.compute nl in
  (* net named "Q" must transition in both domains *)
  let find name =
    let found = ref None in
    Netlist.iter_nets nl (fun n ni ->
        if ni.Netlist.net_name = name then found := Some n);
    Option.get !found
  in
  Alcotest.(check doms_testable) "Q trans" (set [ 0; 1 ]) (DA.transitions da (find "Q"));
  Alcotest.(check doms_testable) "Q samples" (set [ 0; 1 ]) (DA.samples da (find "Q"));
  Alcotest.(check bool) "Q is MTS" true (DA.is_mts_net da (find "Q"));
  Alcotest.(check doms_testable) "N3 trans" (set [ 0 ]) (DA.transitions da (find "N3"));
  Alcotest.(check bool) "N3 not MTS" false (DA.is_mts_net da (find "N3"))

let test_ff_output_single_domain () =
  let b = B.create () in
  let d0 = B.add_domain b "c0" and d1 = B.add_domain b "c1" in
  let i0 = B.add_input b ~domain:d0 () in
  let i1 = B.add_input b ~domain:d1 () in
  let mix = B.add_gate b Cell.Xor [ i0; i1 ] in
  (* Even though the data mixes domains, a dom-clocked FF output only
     transitions in its own clock domain. *)
  let q = B.add_flip_flop b ~data:mix ~clock:(Cell.Dom_clock d0) () in
  let (_ : Ids.Cell.t) = B.add_output b q in
  let nl = B.finalize b in
  let da = DA.compute nl in
  Alcotest.(check doms_testable) "mix both" (set [ 0; 1 ]) (DA.transitions da mix);
  Alcotest.(check doms_testable) "q single" (set [ 0 ]) (DA.transitions da q)

let test_latch_passes_data_domains () =
  let b = B.create () in
  let d0 = B.add_domain b "c0" and d1 = B.add_domain b "c1" in
  let data = B.add_input b ~domain:d0 () in
  let gate = B.add_input b ~domain:d1 () in
  let q = B.add_latch b ~data ~gate:(Cell.Net_trigger gate) () in
  let s = B.add_flip_flop b ~data:q ~clock:(Cell.Dom_clock d0) () in
  let (_ : Ids.Cell.t) = B.add_output b s in
  let nl = B.finalize b in
  let da = DA.compute nl in
  (* Transparent latches pass data transitions and add gate domains. *)
  Alcotest.(check doms_testable) "latch out both" (set [ 0; 1 ]) (DA.transitions da q)

let test_latch_feedback_converges () =
  let b = B.create () in
  let d0 = B.add_domain b "c0" in
  let gate = B.add_input b ~domain:d0 () in
  let loop = B.fresh_net b () in
  let g = B.add_gate b Cell.Not [ loop ] in
  B.add_latch_to b ~data:g ~gate:(Cell.Net_trigger gate) ~output:loop ();
  let nl = B.finalize b in
  let da = DA.compute nl in
  Alcotest.(check doms_testable) "loop converges" (set [ 0 ]) (DA.transitions da loop)

let test_mts_state_detection () =
  let d = Design_gen.fig3_latch () in
  let nl = d.Design_gen.netlist in
  let da = DA.compute nl in
  let mts_states =
    Netlist.fold_cells nl ~init:0 ~f:(fun acc c ->
        if DA.is_mts_state da c then acc + 1 else acc)
  in
  Alcotest.(check int) "one MTS latch" 1 mts_states

let test_ram_domains () =
  let b = B.create () in
  let d0 = B.add_domain b "c0" and d1 = B.add_domain b "c1" in
  let wa = B.add_input b ~domain:d0 () in
  let ra = B.add_input b ~domain:d1 () in
  let rdata =
    B.add_ram b ~addr_bits:1 ~write_enable:wa ~write_data:wa ~write_addr:[ wa ]
      ~read_addr:[ ra ] ~clock:(Cell.Dom_clock d0) ()
  in
  let s = B.add_flip_flop b ~data:rdata ~clock:(Cell.Dom_clock d1) () in
  let (_ : Ids.Cell.t) = B.add_output b s in
  let nl = B.finalize b in
  let da = DA.compute nl in
  (* Read data changes with the write clock and with the read address. *)
  Alcotest.(check doms_testable) "rdata both" (set [ 0; 1 ]) (DA.transitions da rdata);
  Alcotest.(check bool) "rdata multi-transition" true (DA.is_multi_transition da rdata)

let test_static_input_no_domains () =
  let b = B.create () in
  let d0 = B.add_domain b "c0" in
  let i = B.add_input b () in
  let q = B.add_flip_flop b ~data:i ~clock:(Cell.Dom_clock d0) () in
  let (_ : Ids.Cell.t) = B.add_output b q in
  let nl = B.finalize b in
  let da = DA.compute nl in
  Alcotest.(check doms_testable) "static input" (set []) (DA.transitions da i);
  Alcotest.(check doms_testable) "sampled by d0" (set [ 0 ]) (DA.samples da i)

let suite =
  [
    Alcotest.test_case "fig1 transitions/samples" `Quick test_fig1_transitions;
    Alcotest.test_case "ff output single domain" `Quick test_ff_output_single_domain;
    Alcotest.test_case "latch passes data domains" `Quick test_latch_passes_data_domains;
    Alcotest.test_case "latch feedback converges" `Quick test_latch_feedback_converges;
    Alcotest.test_case "mts state detection" `Quick test_mts_state_detection;
    Alcotest.test_case "ram domains" `Quick test_ram_domains;
    Alcotest.test_case "static input" `Quick test_static_input_no_domains;
  ]
