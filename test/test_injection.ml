(* Failure injection: corrupt a known-good schedule and check the fidelity
   harness actually notices.  This guards against a vacuous detector — if a
   broken schedule still "passes", the zero-mismatch results elsewhere would
   mean nothing. *)

module Tiers = Msched_route.Tiers
module Schedule = Msched_route.Schedule
module Netlist = Msched_netlist.Netlist
module Async_gen = Msched_clocking.Async_gen
module Fidelity = Msched_sim.Fidelity
module Design_gen = Msched_gen.Design_gen

let prepared_and_sched seed =
  let d =
    Design_gen.random_multidomain ~seed ~domains:3 ~modules:30 ~mts_fraction:0.3 ()
  in
  let copts =
    { Msched.Compile.default_options with Msched.Compile.max_block_weight = 32 }
  in
  let prepared = Msched.Compile.prepare ~options:copts d.Design_gen.netlist in
  (prepared, Msched.Compile.route prepared Tiers.default_options)

let fidelity prepared sched ~seed =
  let clocks =
    Async_gen.clocks ~seed (Netlist.domains prepared.Msched.Compile.netlist)
  in
  Fidelity.compare_run prepared.Msched.Compile.placement sched ~clocks
    ~horizon_ps:250_000 ~seed ()

let test_baseline_perfect () =
  let prepared, sched = prepared_and_sched 71 in
  Alcotest.(check bool) "baseline perfect" true
    (Fidelity.perfect (fidelity prepared sched ~seed:71))

let test_dropped_holdoffs_detected () =
  let prepared, sched = prepared_and_sched 71 in
  let broken = { sched with Schedule.holdoffs = [] } in
  let r = fidelity prepared broken ~seed:71 in
  Alcotest.(check bool)
    (Format.asprintf "dropping hold-offs detected: %a" Fidelity.pp_report r)
    false (Fidelity.perfect r)

let test_stale_departure_detected () =
  (* Sample every transport one slot after its scheduled departure: sources
     on tight paths are then read before... after their settle window moved;
     concretely, push all departures to the frame end so transports sample
     pre-settle values. *)
  let prepared, sched = prepared_and_sched 72 in
  let broken =
    {
      sched with
      Schedule.link_scheds =
        List.map
          (fun ls ->
            {
              ls with
              Schedule.ls_transports =
                List.map
                  (fun tr ->
                    if tr.Schedule.tr_hard then tr
                    else { tr with Schedule.tr_fwd_dep = 0 })
                  ls.Schedule.ls_transports;
            })
          sched.Schedule.link_scheds;
    }
  in
  let r = fidelity prepared broken ~seed:72 in
  Alcotest.(check bool)
    (Format.asprintf "early sampling detected: %a" Fidelity.pp_report r)
    false (Fidelity.perfect r)

let test_truncated_frame_detected () =
  (* Halving the frame makes in-flight values late. *)
  let prepared, sched = prepared_and_sched 73 in
  let broken = { sched with Schedule.length = max 1 (sched.Schedule.length / 2) } in
  let r = fidelity prepared broken ~seed:73 in
  Alcotest.(check bool)
    (Format.asprintf "short frame detected: %a" Fidelity.pp_report r)
    true
    ((not (Fidelity.perfect r)) || r.Fidelity.violations.Msched_sim.Emu_sim.late_events > 0)

let test_dropped_transport_detected () =
  (* Remove all transports of one multi-fanout link: its destination never
     hears about the net again. *)
  let prepared, sched = prepared_and_sched 74 in
  let dropped = ref false in
  let broken =
    {
      sched with
      Schedule.link_scheds =
        List.filter
          (fun (_ : Schedule.link_sched) ->
            if !dropped then true
            else begin
              dropped := true;
              false
            end)
          sched.Schedule.link_scheds;
    }
  in
  Alcotest.(check bool) "a link was dropped" true !dropped;
  let r = fidelity prepared broken ~seed:74 in
  Alcotest.(check bool)
    (Format.asprintf "dropped transport detected: %a" Fidelity.pp_report r)
    false (Fidelity.perfect r)

let test_emulator_deterministic () =
  let prepared, sched = prepared_and_sched 75 in
  let r1 = fidelity prepared sched ~seed:75 in
  let r2 = fidelity prepared sched ~seed:75 in
  Alcotest.(check int) "same mismatches" r1.Fidelity.state_mismatches
    r2.Fidelity.state_mismatches;
  Alcotest.(check int) "same frames" r1.Fidelity.frames r2.Fidelity.frames

let suite =
  [
    Alcotest.test_case "baseline perfect" `Quick test_baseline_perfect;
    Alcotest.test_case "dropped holdoffs detected" `Quick test_dropped_holdoffs_detected;
    Alcotest.test_case "stale departure detected" `Quick test_stale_departure_detected;
    Alcotest.test_case "truncated frame detected" `Quick test_truncated_frame_detected;
    Alcotest.test_case "dropped transport detected" `Quick test_dropped_transport_detected;
    Alcotest.test_case "emulator deterministic" `Quick test_emulator_deterministic;
  ]
