(* Failure injection: corrupt a known-good schedule and check the detectors
   actually notice.  This guards against vacuous oracles — if a broken
   schedule still "passes", the zero-mismatch results elsewhere would mean
   nothing.  Two detectors are exercised on each corruption: the dynamic
   fidelity harness (lock-step differential simulation) and the static
   verifier (Msched_check.Verify), which must name the specific violation
   kind.  Some corruptions are dynamically invisible by construction
   (dropping a redundant equalized fork transport, double-booking a wire the
   emulator does not model) — those demonstrate that the static verifier is
   strictly stronger than the finite-stimulus harness. *)

module Tiers = Msched_route.Tiers
module Schedule = Msched_route.Schedule
module Netlist = Msched_netlist.Netlist
module Async_gen = Msched_clocking.Async_gen
module Fidelity = Msched_sim.Fidelity
module Design_gen = Msched_gen.Design_gen
module Verify = Msched_check.Verify
module System = Msched_arch.System

let prepared_and_sched seed =
  let d =
    Design_gen.random_multidomain ~seed ~domains:3 ~modules:30 ~mts_fraction:0.3 ()
  in
  let copts =
    { Msched.Compile.default_options with Msched.Compile.max_block_weight = 32 }
  in
  let prepared = Msched.Compile.prepare ~options:copts d.Design_gen.netlist in
  (prepared, Msched.Compile.route prepared Tiers.default_options)

let fidelity prepared sched ~seed =
  let clocks =
    Async_gen.clocks ~seed (Netlist.domains prepared.Msched.Compile.netlist)
  in
  Fidelity.compare_run prepared.Msched.Compile.placement sched ~clocks
    ~horizon_ps:250_000 ~seed ()

let verify prepared sched = Msched.Compile.verify_schedule prepared sched

let check_kind_flagged name prepared broken kind =
  let r = verify prepared broken in
  Alcotest.(check bool)
    (Format.asprintf "%s flags %s: %a" name kind Verify.pp_report r)
    true
    (Verify.count_kind r kind >= 1)

let test_baseline_perfect () =
  let prepared, sched = prepared_and_sched 71 in
  Alcotest.(check bool) "baseline perfect" true
    (Fidelity.perfect (fidelity prepared sched ~seed:71));
  let r = verify prepared sched in
  Alcotest.(check bool)
    (Format.asprintf "baseline verifier-clean: %a" Verify.pp_report r)
    true (Verify.is_clean r)

let test_dropped_holdoffs_detected () =
  let prepared, sched = prepared_and_sched 71 in
  Alcotest.(check bool) "design has hold-offs" true (sched.Schedule.holdoffs <> []);
  let broken = { sched with Schedule.holdoffs = [] } in
  let r = fidelity prepared broken ~seed:71 in
  Alcotest.(check bool)
    (Format.asprintf "dropping hold-offs detected: %a" Fidelity.pp_report r)
    false (Fidelity.perfect r);
  check_kind_flagged "dropped hold-offs" prepared broken "missing-holdoff"

let test_stale_departure_detected () =
  (* Sample every transport one slot after its scheduled departure: sources
     on tight paths are then read before... after their settle window moved;
     concretely, push all departures to the frame end so transports sample
     pre-settle values. *)
  let prepared, sched = prepared_and_sched 72 in
  let broken =
    {
      sched with
      Schedule.link_scheds =
        List.map
          (fun ls ->
            {
              ls with
              Schedule.ls_transports =
                List.map
                  (fun tr ->
                    if tr.Schedule.tr_hard then tr
                    else { tr with Schedule.tr_fwd_dep = 0 })
                  ls.Schedule.ls_transports;
            })
          sched.Schedule.link_scheds;
    }
  in
  let r = fidelity prepared broken ~seed:72 in
  Alcotest.(check bool)
    (Format.asprintf "early sampling detected: %a" Fidelity.pp_report r)
    false (Fidelity.perfect r);
  check_kind_flagged "early sampling" prepared broken "departure-too-early"

let test_truncated_frame_detected () =
  (* Halving the frame makes in-flight values late. *)
  let prepared, sched = prepared_and_sched 73 in
  let broken = { sched with Schedule.length = max 1 (sched.Schedule.length / 2) } in
  let r = fidelity prepared broken ~seed:73 in
  Alcotest.(check bool)
    (Format.asprintf "short frame detected: %a" Fidelity.pp_report r)
    true
    ((not (Fidelity.perfect r)) || r.Fidelity.violations.Msched_sim.Emu_sim.late_events > 0);
  check_kind_flagged "short frame" prepared broken "transport-overrun"

let test_dropped_transport_detected () =
  (* Remove all transports of one multi-fanout link: its destination never
     hears about the net again. *)
  let prepared, sched = prepared_and_sched 74 in
  let dropped = ref false in
  let broken =
    {
      sched with
      Schedule.link_scheds =
        List.filter
          (fun (_ : Schedule.link_sched) ->
            if !dropped then true
            else begin
              dropped := true;
              false
            end)
          sched.Schedule.link_scheds;
    }
  in
  Alcotest.(check bool) "a link was dropped" true !dropped;
  let r = fidelity prepared broken ~seed:74 in
  Alcotest.(check bool)
    (Format.asprintf "dropped transport detected: %a" Fidelity.pp_report r)
    false (Fidelity.perfect r);
  check_kind_flagged "dropped link" prepared broken "missing-link"

(* ---- Corruption matrix: four targeted schedule mutations, each named by
   the static verifier with its specific violation kind. ---- *)

(* Replace the transports of the first link satisfying [pred] using [f]. *)
let mutate_first_link sched ~pred ~f =
  let hit = ref false in
  let link_scheds =
    List.map
      (fun (ls : Schedule.link_sched) ->
        if (not !hit) && pred ls then begin
          hit := true;
          { ls with Schedule.ls_transports = f ls.Schedule.ls_transports }
        end
        else ls)
      sched.Schedule.link_scheds
  in
  Alcotest.(check bool) "a link was mutated" true !hit;
  { sched with Schedule.link_scheds }

let is_fork (ls : Schedule.link_sched) =
  List.length
    (List.filter (fun tr -> not tr.Schedule.tr_hard) ls.Schedule.ls_transports)
  >= 2

let test_matrix_skewed_arrival () =
  (* Skew one constituent-domain transport's arrival: the FORK is no longer
     delay-equalized, so the MERGE could reassemble values sampled at
     different instants (paper Figure 2). *)
  let prepared, sched = prepared_and_sched 76 in
  let broken =
    mutate_first_link sched ~pred:is_fork ~f:(fun transports ->
        match transports with
        | first :: rest ->
            {
              first with
              Schedule.tr_fwd_arr =
                (if first.Schedule.tr_fwd_arr < sched.Schedule.length then
                   first.Schedule.tr_fwd_arr + 1
                 else first.Schedule.tr_fwd_arr - 1);
            }
            :: rest
        | [] -> [])
  in
  check_kind_flagged "skewed arrival" prepared broken "fork-skew"

let test_matrix_swapped_holdoff () =
  (* Swap a hold-off's gate/data slots: data is released while the gate is
     still being held back — exactly the Figure 4a clobbering order. *)
  let prepared, sched = prepared_and_sched 76 in
  Alcotest.(check bool) "design has hold-offs" true (sched.Schedule.holdoffs <> []);
  let broken =
    {
      sched with
      Schedule.holdoffs =
        (match sched.Schedule.holdoffs with
        | h :: rest ->
            { h with Schedule.ho_gate = h.Schedule.ho_data; ho_data = h.Schedule.ho_gate }
            :: rest
        | [] -> []);
    }
  in
  check_kind_flagged "swapped hold-off" prepared broken "holdoff-misordered"

let test_matrix_dropped_fork_transport () =
  (* Drop one constituent-domain transport of a FORK.  Because TIERS
     equalizes fork transports, the survivors deliver identical samples at
     identical slots — the corruption is invisible to the finite-stimulus
     harness, and only the static completeness check catches it. *)
  let prepared, sched = prepared_and_sched 76 in
  let broken =
    mutate_first_link sched ~pred:is_fork ~f:(function
      | _ :: rest -> rest
      | [] -> [])
  in
  check_kind_flagged "dropped fork transport" prepared broken
    "missing-fork-transport";
  let r = fidelity prepared broken ~seed:76 in
  Alcotest.(check bool)
    (Format.asprintf
       "dropped fork transport is dynamically invisible (verifier is \
        strictly stronger): %a"
       Fidelity.pp_report r)
    true (Fidelity.perfect r)

let test_matrix_double_booked_slot () =
  (* Duplicate one multiplexed transport enough times to exceed its first
     hop channel's wire pool: more values in flight on one (channel, slot)
     than physical wires.  The emulator has no wire-contention model, so
     only the static occupancy check can see this. *)
  let prepared, sched = prepared_and_sched 76 in
  let channels = System.channels prepared.Msched.Compile.system in
  let broken =
    mutate_first_link sched
      ~pred:(fun ls ->
        List.exists
          (fun tr -> (not tr.Schedule.tr_hard) && tr.Schedule.tr_hops <> [])
          ls.Schedule.ls_transports)
      ~f:(fun transports ->
        let tr =
          List.find
            (fun tr -> (not tr.Schedule.tr_hard) && tr.Schedule.tr_hops <> [])
            transports
        in
        let c, _ = List.hd tr.Schedule.tr_hops in
        let width = channels.(c).System.width in
        List.init width (fun _ -> tr) @ transports)
  in
  check_kind_flagged "double-booked slot" prepared broken "channel-overbooked"

(* ---- Front-end fuzz: corrupted serialized netlists must surface as
   structured diagnostics, never as an unstructured exception.  This is the
   no-escape guarantee of the resilient driver: whatever garbage the parser
   lets through, [compile_resilient] returns a report. ---- *)

let corrupt_text rng text =
  let lines = String.split_on_char '\n' text in
  let n = List.length lines in
  let pick m = Random.State.int rng (max 1 m) in
  match Random.State.int rng 4 with
  | 0 ->
      (* Truncate: keep a prefix of the file. *)
      let keep = pick n in
      String.concat "\n" (List.filteri (fun i _ -> i < keep) lines)
  | 1 ->
      (* Drop a random line (e.g. a driver or a net declaration). *)
      let victim = pick n in
      String.concat "\n" (List.filteri (fun i _ -> i <> victim) lines)
  | 2 ->
      (* Mutate one line into junk tokens. *)
      let victim = pick n in
      String.concat "\n"
        (List.mapi
           (fun i l -> if i = victim then "bogus directive " ^ l else l)
           lines)
  | _ ->
      (* Scramble an integer token to a huge out-of-range id. *)
      let victim = pick n in
      String.concat "\n"
        (List.mapi
           (fun i l ->
             if i <> victim then l
             else
               String.concat " "
                 (List.map
                    (fun tok ->
                      match int_of_string_opt tok with
                      | Some k -> string_of_int ((k * 7919) + 1_000_003)
                      | None -> tok)
                    (String.split_on_char ' ' l)))
           lines)

let prop_corrupted_netlists_never_escape =
  QCheck.Test.make
    ~name:"compile_resilient never lets corrupted input escape unstructured"
    ~count:60
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      (* Base designs span all workload families, so corruption is injected
         into GALS handshake wrappers, dense-crossing matrices, and gated
         memory fabrics as well as the classic random shape. *)
      let d =
        match seed mod 4 with
        | 0 ->
            Design_gen.gals_islands ~seed:(seed mod 97) ~islands:3
              ~island_size:1 ()
        | 1 ->
            Design_gen.dense_crossing ~seed:(seed mod 97) ~domains:5
              ~density:0.3 ~module_gates:2 ()
        | 2 ->
            Design_gen.gated_memory_fabric ~seed:(seed mod 97) ~banks:2
              ~addr_bits:2 ()
        | _ ->
            Design_gen.random_multidomain ~seed:(seed mod 97) ~domains:3
              ~modules:6 ~mts_fraction:0.3 ()
      in
      let text =
        corrupt_text rng (Msched_netlist.Serial.to_string d.Design_gen.netlist)
      in
      match Msched_netlist.Serial.of_string_diag text with
      | Error diags ->
          (* Structured rejection at parse time is a pass — but it must
             carry at least one error diagnostic. *)
          diags <> [] && Msched_netlist.Lint.has_errors diags
      | Ok nl -> (
          let options =
            {
              Msched.Compile.default_options with
              Msched.Compile.max_block_weight = 32;
            }
          in
          match Msched.Compile.compile_resilient ~options ~max_retries:1 nl with
          | r ->
              (* Either a schedule or error diagnostics explaining why not. *)
              Msched.Compile.succeeded r
              || List.exists Msched_diag.Diag.is_error r.Msched.Compile.diagnostics
          | exception e ->
              QCheck.Test.fail_reportf "escaped exception: %s"
                (Printexc.to_string e)))

let test_emulator_deterministic () =
  let prepared, sched = prepared_and_sched 75 in
  let r1 = fidelity prepared sched ~seed:75 in
  let r2 = fidelity prepared sched ~seed:75 in
  Alcotest.(check int) "same mismatches" r1.Fidelity.state_mismatches
    r2.Fidelity.state_mismatches;
  Alcotest.(check int) "same frames" r1.Fidelity.frames r2.Fidelity.frames

let suite =
  [
    Alcotest.test_case "baseline perfect" `Quick test_baseline_perfect;
    Alcotest.test_case "dropped holdoffs detected" `Quick test_dropped_holdoffs_detected;
    Alcotest.test_case "stale departure detected" `Quick test_stale_departure_detected;
    Alcotest.test_case "truncated frame detected" `Quick test_truncated_frame_detected;
    Alcotest.test_case "dropped transport detected" `Quick test_dropped_transport_detected;
    Alcotest.test_case "matrix: skewed arrival" `Quick test_matrix_skewed_arrival;
    Alcotest.test_case "matrix: swapped holdoff" `Quick test_matrix_swapped_holdoff;
    Alcotest.test_case "matrix: dropped fork transport" `Quick
      test_matrix_dropped_fork_transport;
    Alcotest.test_case "matrix: double-booked slot" `Quick
      test_matrix_double_booked_slot;
    Alcotest.test_case "emulator deterministic" `Quick test_emulator_deterministic;
    QCheck_alcotest.to_alcotest prop_corrupted_netlists_never_escape;
  ]
