(* Bechamel timing benches, one group per paper artifact (see DESIGN.md §4):

     table1/*   — compile + route cost behind each Table 1 column pair
     figure8/*  — cost of one pin-sweep point behind Figure 8
     fidelity/* — emulation-frame and golden-frame execution cost
     ablation/* — scheduler variants on one prepared design

   Workloads are scaled down so the whole run finishes in about a minute;
   `dune exec bin/experiments.exe -- <cmd>` regenerates the actual
   tables/figures at evaluation scale. *)

open Bechamel
open Toolkit
module Netlist = Msched_netlist.Netlist
module Tiers = Msched_route.Tiers
module Async_gen = Msched_clocking.Async_gen
module Edges = Msched_clocking.Edges
module Design_gen = Msched_gen.Design_gen

let options =
  {
    Msched.Compile.default_options with
    Msched.Compile.max_block_weight = 64;
    pins_per_fpga = 96;
  }

(* Shared prepared designs, built once: the benches time the interesting
   phases, not the generator. *)
let design1 = lazy (Design_gen.design1_like ~scale:0.05 ())
let design2 = lazy (Design_gen.design2_like ~scale:0.05 ())

let prepared1 =
  lazy (Msched.Compile.prepare ~options (Lazy.force design1).Design_gen.netlist)

let prepared2 =
  lazy (Msched.Compile.prepare ~options (Lazy.force design2).Design_gen.netlist)

let route_bench name prepared opts =
  Test.make ~name
    (Staged.stage (fun () ->
         ignore (Msched.Compile.route (Lazy.force prepared) opts)))

let table1_tests =
  Test.make_grouped ~name:"table1"
    [
      Test.make ~name:"design1_prepare"
        (Staged.stage (fun () ->
             ignore
               (Msched.Compile.prepare ~options
                  (Lazy.force design1).Design_gen.netlist)));
      route_bench "design1_route_virtual" prepared1 Tiers.default_options;
      route_bench "design1_route_hard" prepared1 Tiers.hard_options;
      route_bench "design2_route_virtual" prepared2 Tiers.default_options;
      route_bench "design2_route_hard" prepared2 Tiers.hard_options;
    ]

let figure8_tests =
  Test.make_grouped ~name:"figure8"
    [
      Test.make ~name:"sweep_point"
        (Staged.stage (fun () ->
             ignore
               (Msched.Pin_sweep.sweep ~weights:[ 64 ]
                  ~pin_candidates:[ 96; 48 ]
                  (Lazy.force design1).Design_gen.netlist)));
    ]

(* Fidelity: per-frame execution cost of both simulators. *)
let fidelity_env =
  lazy
    (let prepared = Lazy.force prepared1 in
     let sched = Msched.Compile.route prepared Tiers.default_options in
     let nl = prepared.Msched.Compile.netlist in
     let stim = Msched_sim.Stimulus.make nl in
     let emu =
       Msched_sim.Emu_sim.create prepared.Msched.Compile.placement sched stim
     in
     let golden = Msched_sim.Ref_sim.create nl stim in
     let clocks = Async_gen.clocks (Netlist.domains nl) in
     let edges = Array.of_list (Edges.stream clocks ~horizon_ps:2_000_000) in
     (emu, golden, edges, ref 0, ref 0))

let fidelity_tests =
  Test.make_grouped ~name:"fidelity"
    [
      Test.make ~name:"emulator_frame"
        (Staged.stage (fun () ->
             let emu, _, edges, i, _ = Lazy.force fidelity_env in
             Msched_sim.Emu_sim.run_edge emu edges.(!i mod Array.length edges);
             incr i));
      Test.make ~name:"golden_frame"
        (Staged.stage (fun () ->
             let _, golden, edges, _, j = Lazy.force fidelity_env in
             Msched_sim.Ref_sim.apply_edge golden
               edges.(!j mod Array.length edges);
             incr j));
    ]

let ablation_tests =
  Test.make_grouped ~name:"ablation"
    [
      route_bench "full" prepared1 Tiers.default_options;
      route_bench "no_equalize" prepared1
        { Tiers.default_options with Tiers.equalize_forks = false };
      route_bench "no_latch_order" prepared1
        { Tiers.default_options with Tiers.latch_ordering = false };
      route_bench "all_domain" prepared1
        { Tiers.default_options with Tiers.same_domain_only = false };
    ]

let benchmark () =
  let tests =
    Test.make_grouped ~name:"msched"
      [ table1_tests; figure8_tests; fidelity_tests; ablation_tests ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Analyze.merge ols instances [ results ]

(* One instrumented pipeline run per design (prepare, virtual + hard route,
   verify), exported as BENCH_pipeline.json so phase wall-times and counters
   are diffable across commits alongside the bechamel numbers. *)
let pipeline_doc design =
  let obs = Msched_obs.Sink.create () in
  let prepared =
    Msched.Compile.prepare
      ~options:{ options with Msched.Compile.obs }
      (Lazy.force design).Design_gen.netlist
  in
  let virt = Msched.Compile.route ~obs prepared Tiers.default_options in
  ignore (Msched.Compile.route ~obs prepared Tiers.hard_options);
  ignore (Msched.Compile.verify_schedule ~obs prepared virt);
  Msched_obs.Export.json_string obs

(* A retry-exercising resilient run on a congested design: the driver's
   ladder (and the warm-reroute machinery underneath it) shows up in the
   exported [driver.*] / [reroute.*] counters, and the driver JSON itself
   is embedded so attempt-by-attempt costs are diffable too. *)
let driver_doc () =
  let obs = Msched_obs.Sink.create () in
  let congested =
    (Design_gen.random_multidomain ~seed:517 ~domains:3 ~modules:30
       ~mts_fraction:0.3 ())
      .Design_gen.netlist
  in
  let tight =
    {
      Msched.Compile.default_options with
      Msched.Compile.max_block_weight = 32;
      pins_per_fpga = 24;
      route = { Tiers.default_options with Tiers.max_extra_slots = 0 };
      obs;
    }
  in
  let r =
    Msched.Compile.compile_resilient ~options:tight ~max_retries:2
      ~fallback_hard:true congested
  in
  Printf.sprintf "{\"result\":%s,\"obs\":%s}"
    (Msched.Compile.resilient_to_json r)
    (Msched_obs.Export.json_string obs)

(* Batch-server throughput: designs/sec at 1 vs 4 workers over a seeded
   corpus, and cache-cold vs cache-warm wall time on a congested corpus
   where the persisted reroute ledger actually shortens the search.  The
   host core count is recorded because worker-count speedup is bounded by
   it (a 1-core container cannot show parallel gain). *)
let batch_doc () =
  let module Server = Msched_server.Server in
  let module Serial = Msched_netlist.Serial in
  let design ~seed ~modules =
    Serial.to_string
      (Design_gen.random_multidomain ~seed ~domains:3 ~modules
         ~mts_fraction:0.25 ())
        .Design_gen.netlist
  in
  let corpus n ~base ~modules =
    List.init n (fun i ->
        Server.job_of_text ~index:i
          ~path:(Printf.sprintf "bench-%02d.mnl" i)
          (design ~seed:(base + i) ~modules))
  in
  (* Throughput: 16 mid-size designs, cache off.  Large enough that
     per-design compile work dominates domain-spawn overhead. *)
  let throughput = corpus 16 ~base:700 ~modules:24 in
  (* Best-of-3 wall time: sub-100ms batches are noisy under GC. *)
  let best run =
    let pick a b = if a.Server.b_wall_s <= b.Server.b_wall_s then a else b in
    pick (run ()) (pick (run ()) (run ()))
  in
  let b1 =
    best (fun () -> Server.run_batch ~jobs:1 Server.default_settings throughput)
  in
  let b4 =
    best (fun () -> Server.run_batch ~jobs:4 Server.default_settings throughput)
  in
  (* Cache: 6 congested designs under tight options, one cold batch to
     populate a fresh cache directory, one warm batch over it. *)
  let tight =
    {
      Msched.Compile.default_options with
      Msched.Compile.max_block_weight = 32;
      pins_per_fpga = 24;
      route = { Tiers.default_options with Tiers.max_extra_slots = 0 };
    }
  in
  let cache_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "msched-bench-cache-%d" (Unix.getpid ()))
  in
  let congested = corpus 6 ~base:517 ~modules:30 in
  let settings =
    {
      Server.default_settings with
      Server.s_options = tight;
      s_max_retries = 2;
      s_fallback_hard = true;
      s_cache_dir = Some cache_dir;
    }
  in
  (* One cold batch populates the fresh cache; warm batches replay it. *)
  let cold = Server.run_batch ~jobs:1 settings congested in
  let warm = best (fun () -> Server.run_batch ~jobs:1 settings congested) in
  let count status b =
    Array.fold_left
      (fun n r -> if r.Server.r_cache = status then n + 1 else n)
      0 b.Server.b_results
  in
  let per_s b =
    if b.Server.b_wall_s > 0.0 then
      float_of_int (Array.length b.Server.b_results) /. b.Server.b_wall_s
    else 0.0
  in
  Printf.sprintf
    "{\"cores\":%d,\"throughput\":{\"designs\":%d,\"jobs1_wall_s\":%.6f,\"jobs4_wall_s\":%.6f,\"speedup_4v1\":%.3f,\"designs_per_s_jobs1\":%.2f,\"designs_per_s_jobs4\":%.2f,\"max_inflight_jobs4\":%d},\"cache\":{\"designs\":%d,\"cold_wall_s\":%.6f,\"warm_wall_s\":%.6f,\"warm_speedup\":%.3f,\"warm_hits\":%d}}"
    (Domain.recommended_domain_count ())
    (List.length throughput) b1.Server.b_wall_s b4.Server.b_wall_s
    (if b4.Server.b_wall_s > 0.0 then b1.Server.b_wall_s /. b4.Server.b_wall_s
     else 0.0)
    (per_s b1) (per_s b4) b4.Server.b_max_inflight (List.length congested)
    cold.Server.b_wall_s warm.Server.b_wall_s
    (if warm.Server.b_wall_s > 0.0 then
       cold.Server.b_wall_s /. warm.Server.b_wall_s
     else 0.0)
    (count Server.Cache_warm warm)

(* Socket-serve throughput: req/s and p50/p99 latency over a REAL tcp
   socket at 1 vs 4 worker domains, 4 concurrent client connections each —
   the full hardened path (framing, dispatch queue, worker domains,
   response write-back), not just [run_batch].  Latency is per request,
   measured at the client. *)
let serve_doc () =
  let module Serial = Msched_netlist.Serial in
  let module Dispatch = Msched_server.Dispatch in
  let module Transport = Msched_server.Transport in
  let requests_per_client = 6 and clients = 4 in
  let texts =
    Array.init (requests_per_client * clients) (fun i ->
        Serial.to_string
          (Design_gen.random_multidomain ~seed:(800 + i) ~domains:2
             ~modules:12 ~mts_fraction:0.25 ())
            .Design_gen.netlist)
  in
  let run_round ~workers =
    let cfg =
      {
        Transport.default_config with
        Transport.t_address = Transport.Tcp ("127.0.0.1", 0);
        t_dispatch =
          { Dispatch.default_config with Dispatch.d_workers = workers };
      }
    in
    let srv = Transport.start cfg in
    let port =
      match Transport.bound_address srv with
      | Transport.Tcp (_, p) -> p
      | Transport.Unix_path _ -> assert false
    in
    let latencies = Array.make (Array.length texts) 0.0 in
    let client ci =
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let buf = Bytes.create 65536 in
      let carry = ref "" in
      let recv_line () =
        let rec go () =
          match String.index_opt !carry '\n' with
          | Some i ->
              let line = String.sub !carry 0 i in
              carry := String.sub !carry (i + 1) (String.length !carry - i - 1);
              line
          | None -> (
              match Unix.read fd buf 0 (Bytes.length buf) with
              | 0 -> failwith "serve bench: server closed early"
              | n ->
                  carry := !carry ^ Bytes.sub_string buf 0 n;
                  go ())
        in
        go ()
      in
      for r = 0 to requests_per_client - 1 do
        let idx = (ci * requests_per_client) + r in
        let req =
          Printf.sprintf "{\"text\":%s}\n"
            (Msched_diag.Diag.Json.string texts.(idx))
        in
        let t0 = Unix.gettimeofday () in
        let rec write off =
          if off < String.length req then
            write (off + Unix.write_substring fd req off (String.length req - off))
        in
        write 0;
        ignore (recv_line ());
        latencies.(idx) <- Unix.gettimeofday () -. t0
      done;
      Unix.close fd
    in
    let t0 = Unix.gettimeofday () in
    let threads = List.init clients (Thread.create client) in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    Transport.request_shutdown srv `Drain;
    let s = Transport.wait srv in
    Array.sort compare latencies;
    let pct p =
      let n = Array.length latencies in
      latencies.(min (n - 1) (int_of_float (p *. float_of_int n)))
    in
    Printf.sprintf
      "{\"workers\":%d,\"clients\":%d,\"requests\":%d,\"wall_s\":%.6f,\"req_per_s\":%.2f,\"latency_p50_s\":%.6f,\"latency_p99_s\":%.6f,\"peak_inflight\":%d,\"drain_clean\":%b}"
      workers clients (Array.length texts) wall
      (if wall > 0.0 then float_of_int (Array.length texts) /. wall else 0.0)
      (pct 0.50) (pct 0.99)
      s.Transport.sm_counters.Dispatch.c_peak_inflight s.Transport.sm_clean
  in
  let w1 = run_round ~workers:1 in
  let w4 = run_round ~workers:4 in
  Printf.sprintf "{\"cores\":%d,\"rounds\":[%s,%s]}"
    (Domain.recommended_domain_count ())
    w1 w4

(* The GALS/handshake workload families (ISSUE 6), through the shared
   generator-spec parser: per spec, how MTS fraction and domain count drive
   schedule length and estimated emulation frequency.  Default pins/weight
   (not the bench's tightened [options]): these rows chart scheduling
   scaling, not congestion recovery. *)
let workloads_doc () =
  let module Verify = Msched_check.Verify in
  let module Diag = Msched_diag.Diag in
  let point spec =
    let design =
      match Design_gen.of_spec spec with
      | Ok d -> d
      | Error d -> raise (Diag.Fail d)
    in
    let prepared = Msched.Compile.prepare design.Design_gen.netlist in
    let sched = Msched.Compile.route prepared Tiers.default_options in
    let report = Msched.Compile.verify_schedule prepared sched in
    Printf.sprintf
      "{\"spec\":%s,\"domains\":%d,\"modules\":%d,\"mts_modules\":%d,\"mts_fraction\":%.4f,\"mts_paths\":%d,\"schedule_length\":%d,\"est_speed_hz\":%.1f,\"verifier_clean\":%b}"
      (Diag.Json.string spec)
      (Netlist.num_domains design.Design_gen.netlist)
      design.Design_gen.modules design.Design_gen.mts_modules
      (float_of_int design.Design_gen.mts_modules
      /. float_of_int (max 1 design.Design_gen.modules))
      (Msched_mts.Classify.num_mts_paths prepared.Msched.Compile.classification)
      sched.Msched_route.Schedule.length
      (Msched_route.Schedule.est_speed_hz sched)
      (Verify.is_clean report)
  in
  let family name specs =
    Printf.sprintf "\"%s\":[%s]" name
      (String.concat "," (List.map point specs))
  in
  Printf.sprintf "{%s,%s,%s}"
    (family "gals"
       (List.map
          (fun islands -> Printf.sprintf "gals:islands=%d,size=2" islands)
          [ 4; 8; 16 ]))
    (family "dense"
       (List.map
          (fun density -> Printf.sprintf "dense:domains=12,density=%g" density)
          [ 0.1; 0.3; 0.6 ]))
    (family "fabric"
       (List.map
          (fun banks -> Printf.sprintf "fabric:banks=%d,domains=4" banks)
          [ 4; 8; 16 ]))

(* Intra-compile parallelism (--compile-jobs): prepare and route wall at
   jobs 1/2/4 on one large dense-crossing design.  Only the equality
   classes are gate-worthy — byte-identical schedules, identical
   placements, stable length/speed; the wall times are recorded for
   eyeballing, never asserted (a 1-core CI runner cannot show parallel
   gain, and shared-runner clocks are noise). *)
let par_doc () =
  let spec = "dense:domains=16,density=0.8" in
  let nl =
    (Design_gen.dense_crossing ~seed:11 ~domains:16 ~density:0.8 ())
      .Design_gen.netlist
  in
  let run jobs =
    let t0 = Unix.gettimeofday () in
    let prepared =
      Msched.Compile.prepare
        ~options:{ options with Msched.Compile.compile_jobs = jobs }
        nl
    in
    let t1 = Unix.gettimeofday () in
    let sched = Msched.Compile.route ~jobs prepared Tiers.default_options in
    let t2 = Unix.gettimeofday () in
    (prepared, sched, t1 -. t0, t2 -. t1)
  in
  let p1, s1, prep1, route1 = run 1 in
  let p2, s2, prep2, route2 = run 2 in
  let p4, s4, prep4, route4 = run 4 in
  let module Placement = Msched_place.Placement in
  let assignment p =
    let placement = p.Msched.Compile.placement in
    List.init
      (Msched_partition.Partition.num_blocks (Placement.partition placement))
      (fun b ->
        Msched_netlist.Ids.Fpga.to_int
          (Placement.fpga_of_block placement (Msched_netlist.Ids.Block.of_int b)))
  in
  let sjson s = Msched_route.Schedule.to_json_string s in
  Printf.sprintf
    "{\"design\":%s,\"cores\":%d,\"prepare_wall_s\":{\"jobs1\":%.6f,\"jobs2\":%.6f,\"jobs4\":%.6f},\"route_wall_s\":{\"jobs1\":%.6f,\"jobs2\":%.6f,\"jobs4\":%.6f},\"schedule_identical_1v2\":%b,\"schedule_identical_1v4\":%b,\"placement_identical\":%b,\"schedule_length\":%d,\"est_speed_hz\":%.1f}"
    (Msched_diag.Diag.Json.string spec)
    (Domain.recommended_domain_count ())
    prep1 prep2 prep4 route1 route2 route4
    (sjson s1 = sjson s2)
    (sjson s1 = sjson s4)
    (assignment p1 = assignment p2 && assignment p1 = assignment p4)
    s1.Msched_route.Schedule.length
    (Msched_route.Schedule.est_speed_hz s1)

(* Incremental delta compilation (ISSUE 10): one cold base compile with a
   manifest harvest, an identity replay (everything reused, zero search),
   and a connectivity-preserving single-block edit compiled warm against
   the manifest.  The gate keys on the equality classes — the warm
   schedule byte-identical to the cold one, strictly fewer pathfinder
   expansions — and on the reuse fraction; wall times are informational. *)
let delta_doc () =
  let module Compile = Msched.Compile in
  let module Edit = Msched_delta.Edit in
  let module Diff = Msched_delta.Diff in
  let spec = "gals:islands=6,size=6" in
  let nl =
    (Design_gen.gals_islands ~seed:9 ~islands:6 ~island_size:6 ())
      .Design_gen.netlist
  in
  let options = Compile.default_options in
  let t0 = Unix.gettimeofday () in
  let base = Compile.compile_base ~options nl in
  let base_wall = Unix.gettimeofday () -. t0 in
  let ident =
    Compile.compile_delta ~options ~manifest:base.Compile.base_manifest nl
  in
  let sjson c = Msched_route.Schedule.to_json_string c.Compile.schedule in
  (* First flip seed that achieves reuse: domain flips preserve
     connectivity, so the seeded partition stays stable and the untouched
     blocks replay (deterministic for the committed seed). *)
  let rec pick seed =
    if seed > 19 then failwith "bench delta: no flip edit achieved reuse"
    else
      match Edit.apply ~seed Edit.Flip_domain nl with
      | Error _ -> pick (seed + 1)
      | Ok (edited, desc) ->
          let cold = Compile.compile_base ~options edited in
          let t1 = Unix.gettimeofday () in
          let delta =
            Compile.compile_delta ~options
              ~manifest:base.Compile.base_manifest edited
          in
          let warm_wall = Unix.gettimeofday () -. t1 in
          if delta.Compile.delta_reused > 0 then
            (desc, cold, delta, warm_wall)
          else pick (seed + 1)
  in
  let desc, cold, delta, warm_wall = pick 0 in
  let clean, dirty, cone =
    match delta.Compile.delta_diff with
    | Some d -> (Diff.clean_count d, Diff.dirty_count d, Diff.cone_size d)
    | None -> (0, 0, 0)
  in
  Printf.sprintf
    "{\"design\":%s,\"edit\":%s,\"base_expansions\":%d,\"base_wall_s\":%.6f,\"identity_reused\":%d,\"identity_expansions\":%d,\"blocks_clean\":%d,\"blocks_dirty\":%d,\"cone\":%d,\"reused\":%d,\"ripped\":%d,\"fresh\":%d,\"cold_expansions\":%d,\"warm_expansions\":%d,\"warm_wall_s\":%.6f,\"fewer_expansions\":%b,\"reuse_fraction\":%.4f,\"schedule_identical\":%b,\"schedule_length\":%d,\"est_speed_hz\":%.1f}"
    (Msched_diag.Diag.Json.string spec)
    (Msched_diag.Diag.Json.string desc)
    base.Compile.base_expansions base_wall ident.Compile.delta_reused
    ident.Compile.delta_expansions clean dirty cone
    delta.Compile.delta_reused delta.Compile.delta_ripped
    delta.Compile.delta_fresh cold.Compile.base_expansions
    delta.Compile.delta_expansions warm_wall
    (delta.Compile.delta_expansions < cold.Compile.base_expansions)
    (Compile.delta_reuse_fraction delta)
    (sjson delta.Compile.delta_compiled = sjson cold.Compile.base_compiled)
    delta.Compile.delta_compiled.Compile.schedule.Msched_route.Schedule.length
    (Msched_route.Schedule.est_speed_hz
       delta.Compile.delta_compiled.Compile.schedule)

let write_pipeline_json path =
  let doc =
    Printf.sprintf
      "{\"schema\":\"msched-bench-pipeline-7\",\"designs\":{\"design1\":%s,\"design2\":%s},\"driver\":%s,\"batch\":%s,\"serve\":%s,\"workloads\":%s,\"par\":%s,\"delta\":%s}\n"
      (pipeline_doc design1) (pipeline_doc design2) (driver_doc ())
      (batch_doc ()) (serve_doc ()) (workloads_doc ()) (par_doc ())
      (delta_doc ())
  in
  let oc = open_out path in
  output_string oc doc;
  close_out oc;
  Printf.eprintf "wrote %s\n%!" path

(* ---- The regression gate (--baseline FILE --check).

   The fresh pipeline document is diffed against a committed baseline with
   the per-metric-class tolerances of [Msched_explain.Baseline]; any
   regression writes BENCH_diff.json, prints the verdict table and exits
   non-zero, which is what CI keys on. *)

let arg_value flag =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then None
    else if Sys.argv.(i) = flag then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run_gate ~baseline fresh_path =
  let module Baseline = Msched_explain.Baseline in
  let module Diag = Msched_diag.Diag in
  match Baseline.compare_runs ~baseline ~fresh:(read_file fresh_path) with
  | Error d ->
      Format.eprintf "bench gate: %a@." Diag.pp d;
      exit (Diag.exit_code d.Diag.code)
  | Ok diff ->
      let oc = open_out "BENCH_diff.json" in
      output_string oc (Baseline.to_json diff);
      output_string oc "\n";
      close_out oc;
      Format.eprintf "%a@.wrote BENCH_diff.json@." Baseline.pp diff;
      if not (Baseline.ok diff) then exit 1

let main () =
  (* Snapshot the baseline BEFORE the fresh run overwrites it: the
     committed baseline usually IS BENCH_pipeline.json. *)
  let baseline =
    match arg_value "--baseline" with
    | Some path when Array.exists (( = ) "--check") Sys.argv ->
        Some (read_file path)
    | Some _ | None -> None
  in
  write_pipeline_json "BENCH_pipeline.json";
  (match baseline with
  | Some baseline -> run_gate ~baseline "BENCH_pipeline.json"
  | None -> ());
  if
    Array.exists (( = ) "--pipeline-only") Sys.argv
    || Array.exists (( = ) "--check") Sys.argv
  then exit 0;
  let results = benchmark () in
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 120; h = 1 }
  in
  let module U = Bechamel_notty.Unit in
  U.add Instance.monotonic_clock (Measure.unit Instance.monotonic_clock);
  let img =
    Bechamel_notty.Multiple.image_of_ols_results ~rect:window
      ~predictor:Measure.run results
  in
  Notty_unix.eol img |> Notty_unix.output_image

(* Nothing escapes as an uncaught exception with a backtrace: any failure
   is classified through the shared diagnostic mapper and exits with its
   documented class — the same contract as the CLI. *)
let () =
  try main ()
  with e ->
    let module Diag = Msched_diag.Diag in
    let d = Msched.Compile.diag_of_exn e in
    Format.eprintf "bench: %a@." Diag.pp d;
    exit (Diag.exit_code d.Diag.code)
