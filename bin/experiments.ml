(* Experiment harness regenerating every table and figure of the paper's
   evaluation (see DESIGN.md section 4):

     table1   — Table 1, "MTS Virtual Routing vs. Hard Routing"
     figure8  — Figure 8, FPGA count vs per-FPGA pin count
     fidelity — modeling-fidelity experiments (naive vs hard vs virtual)
     ablation — design-choice ablations (equalization, latch ordering,
                same-domain filtering) *)

module Netlist = Msched_netlist.Netlist
module Tiers = Msched_route.Tiers
module Schedule = Msched_route.Schedule
module Async_gen = Msched_clocking.Async_gen
module Fidelity = Msched_sim.Fidelity
module Design_gen = Msched_gen.Design_gen

let setup_logs () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning)

(* ------------------------------------------------------------------ *)

(* Legacy names keep their scale/seed plumbing; anything else goes through
   the shared generator-spec parser (same grammar as `msched gen`). *)
let design_of_name name scale seed =
  match name with
  | "design1" -> Design_gen.design1_like ?seed ~scale ()
  | "design2" -> Design_gen.design2_like ?seed ~scale ()
  | spec -> (
      match Design_gen.of_spec spec with
      | Ok d -> d
      | Error d ->
          Format.eprintf "%a@." Msched_diag.Diag.pp d;
          exit (Msched_diag.Diag.exit_code d.Msched_diag.Diag.code))

let table1 scale pins weight trace json =
  setup_logs ();
  let obs =
    if trace = None && json = None then Msched_obs.Sink.null
    else Msched_obs.Sink.create ()
  in
  let options =
    {
      Msched.Compile.default_options with
      Msched.Compile.max_block_weight = weight;
      pins_per_fpga = pins;
      obs;
    }
  in
  let rows =
    List.map
      (fun name -> Msched.Report.of_design ~options (design_of_name name scale None))
      [ "design1"; "design2" ]
  in
  let ppf =
    if trace = Some "-" || json = Some "-" then Format.err_formatter
    else Format.std_formatter
  in
  Format.fprintf ppf "%a@." Msched.Report.pp_table rows;
  Option.iter
    (fun path ->
      Msched_obs.Export.write_file path (Msched_obs.Export.chrome_trace_string obs))
    trace;
  Option.iter
    (fun path ->
      Msched_obs.Export.write_file path (Msched_obs.Export.json_string obs))
    json

let figure8 scale pins =
  setup_logs ();
  let design = design_of_name "design1" scale None in
  let options =
    { Msched.Compile.default_options with Msched.Compile.pins_per_fpga = pins }
  in
  let points = Msched.Pin_sweep.sweep ~options design.Design_gen.netlist in
  Format.printf "Figure 8 sweep for %s:@.%a@." design.Design_gen.design_label
    Msched.Pin_sweep.pp_points points;
  Format.printf
    "FPGAs needed under a per-FPGA pin limit (paper: 240 user IOs):@.";
  List.iter
    (fun limit ->
      let show hard =
        match
          Msched.Pin_sweep.min_fpgas_under_pin_limit points ~pin_limit:limit ~hard
        with
        | Some n -> string_of_int n
        | None -> "-"
      in
      Format.printf "  pin limit %4d: hard=%4s  virtual=%4s@." limit (show true)
        (show false))
    [ 240; 160; 120; 80; 60; 40 ]

let fidelity_one name scale seed horizon =
  let design = design_of_name name scale (Some seed) in
  let prepared = Msched.Compile.prepare design.Design_gen.netlist in
  let clocks =
    Async_gen.clocks ~seed (Netlist.domains prepared.Msched.Compile.netlist)
  in
  Format.printf "--- %s (seed %d): %a@." design.Design_gen.design_label seed
    Netlist.pp_summary prepared.Msched.Compile.netlist;
  List.iter
    (fun (label, opts) ->
      match Msched.Compile.route prepared opts with
      | sched ->
          let r =
            Fidelity.compare_run prepared.Msched.Compile.placement sched ~clocks
              ~horizon_ps:horizon ~seed ()
          in
          Format.printf "%-8s L=%-4d %s: %a@." label sched.Schedule.length
            (if Fidelity.perfect r then "OK  " else "FAIL")
            Fidelity.pp_report r
      | exception Tiers.Unroutable d ->
          Format.printf "%-8s %a@." label Msched_diag.Diag.pp d)
    [
      ("virtual", Tiers.default_options);
      ("hard", Tiers.hard_options);
      ("naive", Tiers.naive_options);
    ]

let fidelity scale seeds horizon =
  setup_logs ();
  List.iter (fun name -> fidelity_one name scale 11 horizon)
    [ "fig1"; "fig3"; "handshake" ];
  List.iter
    (fun seed ->
      let design =
        Design_gen.random_multidomain ~seed ~domains:3 ~modules:40
          ~mts_fraction:0.25 ()
      in
      let prepared = Msched.Compile.prepare design.Design_gen.netlist in
      let clocks =
        Async_gen.clocks ~seed (Netlist.domains prepared.Msched.Compile.netlist)
      in
      Format.printf "--- random seed %d@." seed;
      List.iter
        (fun (label, opts) ->
          let sched = Msched.Compile.route prepared opts in
          let r =
            Fidelity.compare_run prepared.Msched.Compile.placement sched ~clocks
              ~horizon_ps:horizon ~seed ()
          in
          Format.printf "%-8s %s: %a@." label
            (if Fidelity.perfect r then "OK  " else "FAIL")
            Fidelity.pp_report r)
        [
          ("virtual", Tiers.default_options);
          ("hard", Tiers.hard_options);
          ("naive", Tiers.naive_options);
        ])
    (List.init seeds (fun i -> 1000 + i))

let ablation seeds horizon =
  setup_logs ();
  let variants =
    [
      ("full", `Reverse, Tiers.default_options);
      ( "no-equalize",
        `Reverse,
        { Tiers.default_options with Tiers.equalize_forks = false } );
      ( "no-latch-order",
        `Reverse,
        { Tiers.default_options with Tiers.latch_ordering = false } );
      ( "all-domain",
        `Reverse,
        { Tiers.default_options with Tiers.same_domain_only = false } );
      ("forward", `Forward, Tiers.default_options);
      ( "forward-no-eq",
        `Forward,
        { Tiers.default_options with Tiers.equalize_forks = false } );
    ]
  in
  List.iter
    (fun seed ->
      let design =
        Design_gen.random_multidomain ~seed ~domains:3 ~modules:40
          ~mts_fraction:0.25 ()
      in
      let prepared = Msched.Compile.prepare design.Design_gen.netlist in
      let clocks =
        Async_gen.clocks ~seed (Netlist.domains prepared.Msched.Compile.netlist)
      in
      Format.printf "--- seed %d@." seed;
      List.iter
        (fun (label, direction, opts) ->
          let sched =
            match direction with
            | `Reverse -> Msched.Compile.route prepared opts
            | `Forward -> Msched.Compile.route_forward prepared opts
          in
          let r =
            Fidelity.compare_run prepared.Msched.Compile.placement sched ~clocks
              ~horizon_ps:horizon ~seed ()
          in
          Format.printf "%-15s L=%-4d holdoff=%-5d %s: %a@." label
            sched.Schedule.length
            (Schedule.total_holdoff sched)
            (if Fidelity.perfect r then "OK  " else "FAIL")
            Fidelity.pp_report r)
        variants)
    (List.init seeds (fun i -> 2000 + i))

(* The paper's scalability claim: "this approach can be scaled to handle an
   unlimited number of asynchronous domains".  Sweep the domain count on
   same-size designs and verify fidelity + report the critical path. *)
let domains_sweep max_domains horizon =
  setup_logs ();
  Format.printf "%-8s %-8s %-10s %-12s %-10s %s@." "domains" "blocks"
    "mts_paths" "cp(vclocks)" "holdoff" "fidelity";
  List.iter
    (fun nd ->
      let design =
        Design_gen.random_multidomain ~seed:(900 + nd) ~domains:nd ~modules:40
          ~mts_fraction:0.3 ()
      in
      let prepared = Msched.Compile.prepare design.Design_gen.netlist in
      let sched = Msched.Compile.route prepared Tiers.default_options in
      let clocks =
        Async_gen.clocks ~seed:nd
          (Netlist.domains prepared.Msched.Compile.netlist)
      in
      let r =
        Fidelity.compare_run prepared.Msched.Compile.placement sched ~clocks
          ~horizon_ps:horizon ~seed:nd ()
      in
      Format.printf "%-8d %-8d %-10d %-12d %-10d %s@." nd
        (Msched_partition.Partition.num_blocks prepared.Msched.Compile.partition)
        (Msched_mts.Classify.num_mts_paths prepared.Msched.Compile.classification)
        sched.Schedule.length
        (Schedule.total_holdoff sched)
        (if Fidelity.perfect r then "perfect"
         else Format.asprintf "%a" Fidelity.pp_report r))
    (List.init (max_domains - 1) (fun i -> i + 2))

(* The workload families (ISSUE 6): how MTS fraction and domain count
   drive schedule length and emulation frequency on the GALS/handshake
   topologies of arXiv 0802.3441 / 0710.4711 — the scaling rows the paper
   could not show on its two proprietary ASICs. *)
let workloads_rows () =
  List.concat
    [
      List.map
        (fun islands -> Printf.sprintf "gals:islands=%d,size=2" islands)
        [ 4; 8; 12; 16 ];
      List.map
        (fun density -> Printf.sprintf "dense:domains=12,density=%g" density)
        [ 0.1; 0.3; 0.6 ];
      List.map
        (fun banks -> Printf.sprintf "fabric:banks=%d,domains=4" banks)
        [ 4; 8; 16 ];
    ]

let workloads horizon =
  setup_logs ();
  Format.printf "%-28s %-8s %-8s %-9s %-10s %-12s %-10s %s@." "spec" "domains"
    "modules" "mts_frac" "mts_paths" "L(vclocks)" "est_kHz" "verify";
  List.iter
    (fun spec ->
      let design = design_of_name spec 0.1 None in
      let prepared = Msched.Compile.prepare design.Design_gen.netlist in
      let sched = Msched.Compile.route prepared Tiers.default_options in
      let report = Msched.Compile.verify_schedule prepared sched in
      let clocks =
        Async_gen.clocks ~seed:11
          (Netlist.domains prepared.Msched.Compile.netlist)
      in
      let f =
        Fidelity.compare_run prepared.Msched.Compile.placement sched ~clocks
          ~horizon_ps:horizon ~seed:11 ()
      in
      Format.printf "%-28s %-8d %-8d %-9.3f %-10d %-12d %-10.1f %s@." spec
        (Netlist.num_domains design.Design_gen.netlist)
        design.Design_gen.modules
        (float_of_int design.Design_gen.mts_modules
        /. float_of_int (max 1 design.Design_gen.modules))
        (Msched_mts.Classify.num_mts_paths prepared.Msched.Compile.classification)
        sched.Schedule.length
        (Schedule.est_speed_hz sched /. 1000.0)
        (if not (Msched_check.Verify.is_clean report) then "UNCLEAN"
         else if Fidelity.perfect f then "clean+perfect"
         else "clean"))
    (workloads_rows ())

(* ------------------------------------------------------------------ *)

open Cmdliner

let scale_arg =
  let doc = "Design scale relative to the paper's module counts." in
  Arg.(value & opt float 0.35 & info [ "scale" ] ~doc)

let pins_arg =
  let doc =
    "User-IO pins per FPGA. The paper's XC4062XL has 240; the default of 72      reproduces the paper's pin-pressure regime at our reduced design scale."
  in
  Arg.(value & opt int 72 & info [ "pins" ] ~doc)

let weight_arg =
  let doc = "Max partition block weight (FPGA capacity)." in
  Arg.(value & opt int 128 & info [ "weight" ] ~doc)

let seeds_arg =
  let doc = "Number of random-design seeds." in
  Arg.(value & opt int 3 & info [ "seeds" ] ~doc)

let horizon_arg =
  let doc = "Simulation horizon in picoseconds." in
  Arg.(value & opt int 300_000 & info [ "horizon" ] ~doc)

let max_domains_arg =
  let doc = "Largest domain count to sweep." in
  Arg.(value & opt int 8 & info [ "max-domains" ] ~doc)

let trace_arg =
  let doc = "Write a Chrome trace-event JSON of the run (\"-\" = stdout)." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let json_arg =
  let doc = "Write the observability JSON document (\"-\" = stdout)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let workloads_cmd =
  Cmd.v
    (Cmd.info "workloads"
       ~doc:
         "Scaling table over the GALS/handshake workload families: schedule \
          length and emulation frequency vs domain count and MTS fraction")
    Term.(const workloads $ horizon_arg)

let domains_cmd =
  Cmd.v
    (Cmd.info "domains"
       ~doc:"Scalability sweep over the number of asynchronous domains")
    Term.(const domains_sweep $ max_domains_arg $ horizon_arg)

let table1_cmd =
  Cmd.v
    (Cmd.info "table1" ~doc:"Reproduce Table 1 (virtual vs hard MTS routing)")
    Term.(const table1 $ scale_arg $ pins_arg $ weight_arg $ trace_arg $ json_arg)

let figure8_cmd =
  Cmd.v
    (Cmd.info "figure8" ~doc:"Reproduce Figure 8 (FPGA count vs pin count)")
    Term.(const figure8 $ scale_arg $ pins_arg)

let fidelity_cmd =
  Cmd.v
    (Cmd.info "fidelity" ~doc:"Modeling-fidelity experiments")
    Term.(const fidelity $ scale_arg $ seeds_arg $ horizon_arg)

let ablation_cmd =
  Cmd.v
    (Cmd.info "ablation" ~doc:"Design-choice ablations")
    Term.(const ablation $ seeds_arg $ horizon_arg)

let () =
  let info =
    Cmd.info "experiments"
      ~doc:
        "Reproduction experiments for 'Static Scheduling of Multiple \
         Asynchronous Domains For Functional Verification' (DAC 2001)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            table1_cmd;
            figure8_cmd;
            fidelity_cmd;
            ablation_cmd;
            domains_cmd;
            workloads_cmd;
          ]))
