(* File-based compiler driver: operate on netlists in the text format of
   Msched_netlist.Serial (extension-agnostic; see lib/netlist/serial.mli).

     msched compile  design.mnl [--pins N] [--weight N] [--mode virtual|hard|naive] [--forward]
     msched check    design.mnl [--pins N] [--weight N] [--mode virtual|hard|naive] [--forward]
     msched stats    design.mnl
     msched dot      design.mnl [--partition] > design.dot
     msched simulate design.mnl [--horizon PS] [--seed N]
     msched profile  design.mnl|design1|design2|fig1|fig3|handshake [--trace FILE]
     msched gen      design1|design2|fig1|fig3|handshake [--scale F] > design.mnl

   compile/check/simulate/profile accept --trace FILE to dump a Chrome
   trace-event JSON of the run ("-" = stdout); diagnostics of check go to
   stderr so the trace stream stays parseable. *)

module Netlist = Msched_netlist.Netlist
module Serial = Msched_netlist.Serial
module Dot = Msched_netlist.Dot
module Stats = Msched_netlist.Stats
module Ids = Msched_netlist.Ids
module Tiers = Msched_route.Tiers
module Schedule = Msched_route.Schedule
module Partition = Msched_partition.Partition
module Async_gen = Msched_clocking.Async_gen
module Fidelity = Msched_sim.Fidelity
module Design_gen = Msched_gen.Design_gen
module Sink = Msched_obs.Sink
module Obs_export = Msched_obs.Export

let read_netlist path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  match Serial.of_string text with
  | Ok nl -> nl
  | Error msg ->
      Printf.eprintf "%s: %s\n" path msg;
      exit 1

let options_of ?(obs = Sink.null) pins weight =
  {
    Msched.Compile.default_options with
    Msched.Compile.pins_per_fpga = pins;
    max_block_weight = weight;
    obs;
  }

(* A [--trace FILE] argument turns the sink on; without it every probe in
   the pipeline is a no-op. *)
let sink_of_trace = function None -> Sink.null | Some _ -> Sink.create ()

let write_trace trace obs =
  match trace with
  | None -> ()
  | Some path -> Obs_export.write_file path (Obs_export.chrome_trace_string obs)

let route_options_of mode =
  match mode with
  | "virtual" -> Tiers.default_options
  | "hard" -> Tiers.hard_options
  | "naive" -> Tiers.naive_options
  | other ->
      Printf.eprintf "unknown mode %s (virtual|hard|naive)\n" other;
      exit 1

let compile_cmd path pins weight mode forward trace =
  let nl = read_netlist path in
  let obs = sink_of_trace trace in
  let prepared =
    Msched.Compile.prepare ~options:(options_of ~obs pins weight) nl
  in
  let ropts = route_options_of mode in
  let sched =
    if forward then Msched.Compile.route_forward ~obs prepared ropts
    else Msched.Compile.route ~obs prepared ropts
  in
  (* With --trace -, the trace owns stdout; move the summary to stderr. *)
  let ppf =
    if trace = Some "-" then Format.err_formatter else Format.std_formatter
  in
  Format.fprintf ppf "design:   %a@." Netlist.pp_summary
    prepared.Msched.Compile.netlist;
  Format.fprintf ppf "partition: %a@." Partition.pp_summary
    prepared.Msched.Compile.partition;
  Format.fprintf ppf "mts:      %a@." Msched_mts.Classify.pp_summary
    prepared.Msched.Compile.classification;
  Format.fprintf ppf "%a@." Schedule.pp_summary sched;
  Format.fprintf ppf "pins used (worst FPGA): %d / %d@."
    (Schedule.max_pins_used sched prepared.Msched.Compile.system)
    pins;
  Format.fprintf ppf "channel utilization: %.1f%%, mean transport latency: %.1f@."
    (100.0 *. Schedule.channel_utilization sched prepared.Msched.Compile.system)
    (Schedule.mean_transport_latency sched);
  write_trace trace obs

let check_cmd path pins weight mode forward trace =
  let nl = read_netlist path in
  let obs = sink_of_trace trace in
  let prepared =
    Msched.Compile.prepare ~options:(options_of ~obs pins weight) nl
  in
  let ropts = route_options_of mode in
  let sched =
    if forward then Msched.Compile.route_forward ~obs prepared ropts
    else Msched.Compile.route ~obs prepared ropts
  in
  let report = Msched.Compile.verify_schedule ~obs prepared sched in
  (* Diagnostics on stderr: stdout stays free for --trace - / JSON piping. *)
  Format.eprintf "%a@.%a@." Schedule.pp_summary sched
    Msched_check.Verify.pp_report report;
  List.iter
    (fun w -> Format.eprintf "scheduler warning: %s@." w)
    sched.Schedule.warnings;
  write_trace trace obs;
  if not (Msched_check.Verify.is_clean report) then exit 2

let stats_cmd path =
  let nl = read_netlist path in
  Format.printf "%a@.%a@." Netlist.pp_summary nl Stats.pp (Stats.compute nl)

let dot_cmd path partition weight =
  let nl = read_netlist path in
  if partition then begin
    let part = Partition.make nl ~max_weight:weight () in
    let cluster c = Some (Ids.Block.to_int (Partition.block_of_cell part c)) in
    Format.printf "%a@." (Dot.output ~cluster) nl
  end
  else Format.printf "%a@." (Dot.output ?cluster:None) nl

let simulate_cmd path horizon seed pins weight trace =
  let nl = read_netlist path in
  let obs = sink_of_trace trace in
  let prepared =
    Msched.Compile.prepare ~options:(options_of ~obs pins weight) nl
  in
  let sched = Msched.Compile.route ~obs prepared Tiers.default_options in
  let clocks =
    Async_gen.clocks ~seed (Netlist.domains prepared.Msched.Compile.netlist)
  in
  let report =
    Fidelity.compare_run prepared.Msched.Compile.placement sched ~clocks
      ~horizon_ps:horizon ~seed ~obs ()
  in
  let ppf =
    if trace = Some "-" then Format.err_formatter else Format.std_formatter
  in
  Format.fprintf ppf "%a@.fidelity: %a@." Schedule.pp_summary sched
    Fidelity.pp_report report;
  write_trace trace obs;
  if not (Fidelity.perfect report) then exit 2

(* [profile] accepts either a netlist file or a built-in generator name, so
   CI and quick profiling sessions need no intermediate file. *)
let profile_netlist name scale =
  if Sys.file_exists name then read_netlist name
  else
    match name with
    | "design1" -> (Design_gen.design1_like ~scale ()).Design_gen.netlist
    | "design2" -> (Design_gen.design2_like ~scale ()).Design_gen.netlist
    | "fig1" -> (Design_gen.fig1 ()).Design_gen.netlist
    | "fig3" -> (Design_gen.fig3_latch ()).Design_gen.netlist
    | "handshake" -> (Design_gen.handshake ()).Design_gen.netlist
    | other ->
        Printf.eprintf
          "%s: not a file or a generator name \
           (design1|design2|fig1|fig3|handshake)\n"
          other;
        exit 1

let profile_cmd name pins weight scale trace json =
  let nl = profile_netlist name scale in
  let obs = Sink.create () in
  let prepared =
    Msched.Compile.prepare ~options:(options_of ~obs pins weight) nl
  in
  let tiers = Msched.Compile.route ~obs prepared Tiers.default_options in
  let forward =
    Msched.Compile.route_forward ~obs prepared Tiers.default_options
  in
  ignore (Msched.Compile.verify_schedule ~obs prepared tiers);
  ignore (Msched.Compile.verify_schedule ~obs prepared forward);
  let ppf =
    if trace = Some "-" || json = Some "-" then Format.err_formatter
    else Format.std_formatter
  in
  Format.fprintf ppf "%a@." Obs_export.pp_summary obs;
  write_trace trace obs;
  match json with
  | None -> ()
  | Some path -> Obs_export.write_file path (Obs_export.json_string obs)

let vcd_cmd path horizon seed =
  let nl = read_netlist path in
  let sim = Msched_sim.Ref_sim.create nl (Msched_sim.Stimulus.make ~seed nl) in
  let clocks = Async_gen.clocks ~seed (Netlist.domains nl) in
  let edges = Msched_clocking.Edges.stream clocks ~horizon_ps:horizon in
  Msched_sim.Vcd.trace_run sim ~edges Format.std_formatter

let gen_cmd name scale =
  let design =
    match name with
    | "design1" -> Design_gen.design1_like ~scale ()
    | "design2" -> Design_gen.design2_like ~scale ()
    | "fig1" -> Design_gen.fig1 ()
    | "fig3" -> Design_gen.fig3_latch ()
    | "handshake" -> Design_gen.handshake ()
    | other ->
        Printf.eprintf "unknown design %s\n" other;
        exit 1
  in
  print_string (Serial.to_string design.Design_gen.netlist)

open Cmdliner

let path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"DESIGN" ~doc:"Netlist file")

let pins_arg = Arg.(value & opt int 240 & info [ "pins" ] ~doc:"Pins per FPGA")
let weight_arg = Arg.(value & opt int 64 & info [ "weight" ] ~doc:"Block capacity")
let mode_arg = Arg.(value & opt string "virtual" & info [ "mode" ] ~doc:"virtual|hard|naive")
let forward_arg = Arg.(value & flag & info [ "forward" ] ~doc:"Forward scheduler")
let horizon_arg = Arg.(value & opt int 300_000 & info [ "horizon" ] ~doc:"Sim horizon (ps)")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Stimulus/clock seed")
let partition_arg = Arg.(value & flag & info [ "partition" ] ~doc:"Cluster by partition block")
let scale_arg = Arg.(value & opt float 0.1 & info [ "scale" ] ~doc:"Generator scale")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a Chrome trace-event JSON of the run (\"-\" = stdout)")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write the observability JSON document (\"-\" = stdout)")

let name_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"NAME" ~doc:"design1|design2|fig1|fig3|handshake")

let profile_name_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DESIGN"
        ~doc:"Netlist file, or generator name design1|design2|fig1|fig3|handshake")

let cmds =
  [
    Cmd.v (Cmd.info "compile" ~doc:"Compile a netlist and print the schedule")
      Term.(
        const compile_cmd $ path_arg $ pins_arg $ weight_arg $ mode_arg
        $ forward_arg $ trace_arg);
    Cmd.v
      (Cmd.info "check"
         ~doc:"Compile a netlist and statically verify the schedule")
      Term.(
        const check_cmd $ path_arg $ pins_arg $ weight_arg $ mode_arg
        $ forward_arg $ trace_arg);
    Cmd.v (Cmd.info "stats" ~doc:"Netlist statistics")
      Term.(const stats_cmd $ path_arg);
    Cmd.v (Cmd.info "dot" ~doc:"Graphviz DOT export")
      Term.(const dot_cmd $ path_arg $ partition_arg $ weight_arg);
    Cmd.v (Cmd.info "simulate" ~doc:"Compile and co-simulate against the golden model")
      Term.(
        const simulate_cmd $ path_arg $ horizon_arg $ seed_arg $ pins_arg
        $ weight_arg $ trace_arg);
    Cmd.v
      (Cmd.info "profile"
         ~doc:
           "Run the full pipeline (prepare, both schedulers, verifier) with \
            an enabled observability sink and print the span/metric summary")
      Term.(
        const profile_cmd $ profile_name_arg $ pins_arg $ weight_arg
        $ scale_arg $ trace_arg $ json_arg);
    Cmd.v (Cmd.info "vcd" ~doc:"Golden-simulate and dump a VCD waveform to stdout")
      Term.(const vcd_cmd $ path_arg $ horizon_arg $ seed_arg);
    Cmd.v (Cmd.info "gen" ~doc:"Emit a benchmark design in the text format")
      Term.(const gen_cmd $ name_arg $ scale_arg);
  ]

let () =
  let info =
    Cmd.info "msched" ~doc:"Multi-domain static-scheduling emulation compiler"
  in
  exit (Cmd.eval (Cmd.group info cmds))
