(* File-based compiler driver: operate on netlists in the text format of
   Msched_netlist.Serial (extension-agnostic; see lib/netlist/serial.mli).

     msched compile  design.mnl|SPEC [--pins N] [--weight N] [--mode virtual|hard|naive]
                     [--forward] [--retries N] [--fallback-hard] [--cold]
                     [--max-extra N] [--diag-json FILE]
                     [--delta-base MANIFEST] [--emit-manifest FILE]
     msched delta diff BASE EDITED [--pins N] [--weight N] [--json FILE]
     msched lint     design.mnl [--diag-json FILE]
     msched check    design.mnl|SPEC [--pins N] [--weight N] [--mode virtual|hard|naive] [--forward] [--json FILE]
     msched explain  design.mnl|SPEC [--mode virtual|hard|naive] [--json FILE] [--trace FILE]
     msched stats    design.mnl
     msched dot      design.mnl [--partition] > design.dot
     msched simulate design.mnl [--horizon PS] [--seed N] [--diag-json FILE]
     msched profile  design.mnl|SPEC [--trace FILE]
     msched gen      SPEC [--scale F] > design.mnl

   SPEC is a generator spec in the grammar of Design_gen.of_spec — e.g.
   "design2:scale=0.05", "gals:islands=16,size=8",
   "dense:domains=24,density=0.3", "fabric:banks=12" — the same parser the
   bench and experiment harness use.  A malformed spec is an E_PARSE
   diagnostic (exit 3), like any other malformed input.

   compile/check/simulate/profile accept --trace FILE to dump a Chrome
   trace-event JSON of the run ("-" = stdout); diagnostics of check go to
   stderr so the trace stream stays parseable.

   Exit codes (documented in docs/ROBUSTNESS.md): 0 success, 1 usage, 2
   verification failure, 3 malformed input, 4 unroutable/infeasible, 5
   unsupported construct, 6 internal error. *)

module Netlist = Msched_netlist.Netlist
module Serial = Msched_netlist.Serial
module Lint = Msched_netlist.Lint
module Dot = Msched_netlist.Dot
module Stats = Msched_netlist.Stats
module Ids = Msched_netlist.Ids
module Diag = Msched_diag.Diag
module Tiers = Msched_route.Tiers
module Schedule = Msched_route.Schedule
module Partition = Msched_partition.Partition
module Async_gen = Msched_clocking.Async_gen
module Fidelity = Msched_sim.Fidelity
module Design_gen = Msched_gen.Design_gen
module Sink = Msched_obs.Sink
module Obs_export = Msched_obs.Export
module Server = Msched_server.Server
module Manifest = Msched_server.Manifest
module Cache = Msched_server.Cache
module Dispatch = Msched_server.Dispatch
module Transport = Msched_server.Transport
module Delta_manifest = Msched_delta.Manifest
module Delta_diff = Msched_delta.Diff

(* Errors are always printed; warnings are capped so a lint-unclean but
   compilable design doesn't bury the result (full detail via --diag-json). *)
let max_printed_warnings = 10

let print_diags path diags =
  let warnings = ref 0 in
  List.iter
    (fun d ->
      if Diag.is_error d then Format.eprintf "%s: %a@." path Diag.pp d
      else begin
        incr warnings;
        if !warnings <= max_printed_warnings then
          Format.eprintf "%s: %a@." path Diag.pp d
      end)
    diags;
  if !warnings > max_printed_warnings then
    Format.eprintf "%s: … %d more warning(s) suppressed@." path
      (!warnings - max_printed_warnings)

let report_of diags =
  let rep = Diag.Report.create () in
  Diag.Report.add_list rep diags;
  rep

let read_text path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  text

let read_netlist path =
  match Serial.of_string_diag (read_text path) with
  | Ok nl -> nl
  | Error diags ->
      print_diags path diags;
      exit (Diag.Report.exit_code (report_of diags))

(* compile/check/profile/gen accept either a netlist file or a generator
   spec; one parser (Design_gen.of_spec) is shared with the bench and the
   experiment harness. *)
let design_of_spec spec =
  match Design_gen.of_spec spec with
  | Ok d -> d
  | Error d ->
      Format.eprintf "%a@." Diag.pp d;
      exit (Diag.exit_code d.Diag.code)

(* [scale] applies only to the bare legacy names [design1]/[design2]; specs
   carry their own parameters. *)
let netlist_of_design_arg ?(scale = 0.1) name =
  if Sys.file_exists name then read_netlist name
  else
    match name with
    | "design1" -> (Design_gen.design1_like ~scale ()).Design_gen.netlist
    | "design2" -> (Design_gen.design2_like ~scale ()).Design_gen.netlist
    | spec -> (design_of_spec spec).Design_gen.netlist

(* Every command runs under this wrapper: structured failures print their
   diagnostic and exit with the documented class; nothing escapes as an
   uncaught exception with a backtrace. *)
let protect f =
  let fail d =
    Format.eprintf "%a@." Diag.pp d;
    exit (Diag.exit_code d.Diag.code)
  in
  try f () with
  | Msched.Compile.Compile_error d
  | Tiers.Unroutable d
  | Msched_route.Forward.Unsupported d
  | Diag.Fail d ->
      fail d
  | Msched_netlist.Levelize.Combinational_cycle cells ->
      fail
        (Diag.error Diag.E_COMB_CYCLE
           ?cell:
             (match cells with c :: _ -> Some (Ids.Cell.to_int c) | [] -> None)
           "combinational cycle through %d cells" (List.length cells))
  | Netlist.Invalid e -> fail (Lint.diag_of_validation_error e)
  | Sys_error msg -> fail (Diag.error Diag.E_PARSE "%s" msg)
  | Stack_overflow | Out_of_memory ->
      fail (Diag.error Diag.E_INTERNAL "resource exhaustion")
  | (Failure _ | Invalid_argument _ | Not_found) as e ->
      fail (Diag.error Diag.E_INTERNAL "%s" (Printexc.to_string e))

let options_of ?(obs = Sink.null) ?(compile_jobs = 1) pins weight =
  {
    Msched.Compile.default_options with
    Msched.Compile.pins_per_fpga = pins;
    max_block_weight = weight;
    obs;
    compile_jobs;
  }

(* Process-level worker knobs ([batch --jobs], [serve --workers]) multiply
   with [--compile-jobs]; refuse products that oversubscribe the machine. *)
let enforce_jobs_budget ~jobs ~compile_jobs =
  match Msched.Compile.check_jobs_budget ~jobs ~compile_jobs () with
  | Ok () -> ()
  | Error d ->
      Format.eprintf "%a@." Diag.pp d;
      exit (Diag.exit_code d.Diag.code)

let write_out path contents =
  if path = "-" then print_string contents
  else begin
    let oc = open_out path in
    output_string oc contents;
    close_out oc
  end

(* A [--trace FILE] argument turns the sink on; without it every probe in
   the pipeline is a no-op. *)
let sink_of_trace = function None -> Sink.null | Some _ -> Sink.create ()

let write_trace trace obs =
  match trace with
  | None -> ()
  | Some path -> Obs_export.write_file path (Obs_export.chrome_trace_string obs)

let route_options_of mode =
  match mode with
  | "virtual" -> Tiers.default_options
  | "hard" -> Tiers.hard_options
  | "naive" -> Tiers.naive_options
  | other ->
      Printf.eprintf "unknown mode %s (virtual|hard|naive)\n" other;
      exit 1

let pp_compiled ppf pins (c : Msched.Compile.compiled) =
  let prepared = c.Msched.Compile.prepared in
  let sched = c.Msched.Compile.schedule in
  Format.fprintf ppf "design:   %a@." Netlist.pp_summary
    prepared.Msched.Compile.netlist;
  Format.fprintf ppf "partition: %a@." Partition.pp_summary
    prepared.Msched.Compile.partition;
  Format.fprintf ppf "mts:      %a@." Msched_mts.Classify.pp_summary
    prepared.Msched.Compile.classification;
  Format.fprintf ppf "%a@." Schedule.pp_summary sched;
  Format.fprintf ppf "pins used (worst FPGA): %d / %d@."
    (Schedule.max_pins_used sched prepared.Msched.Compile.system)
    pins;
  Format.fprintf ppf
    "channel utilization: %.1f%%, mean transport latency: %.1f@."
    (100.0 *. Schedule.channel_utilization sched prepared.Msched.Compile.system)
    (Schedule.mean_transport_latency sched)

(* The incremental loop (docs/DELTA.md): [--emit-manifest] makes the
   compile an {e exact base} and persists its manifest; [--delta-base]
   replays a previous manifest against the edited design.  Both bypass the
   retry ladder — delta compilation is exact-context by construction and
   raises (under [protect]) exactly when a cold compile would. *)
let pp_delta ppf (d : Msched.Compile.delta_result) =
  (match d.Msched.Compile.delta_diff with
  | Some diff -> Format.fprintf ppf "delta:    %a@." Delta_diff.pp diff
  | None ->
      Format.fprintf ppf
        "delta:    cold fallback (foreign manifest: options or shape \
         mismatch)@.");
  Format.fprintf ppf
    "delta:    %d reused / %d ripped / %d fresh (%.0f%% reuse), %d \
     seeded, %d dropped, %d expansions@."
    d.Msched.Compile.delta_reused d.Msched.Compile.delta_ripped
    d.Msched.Compile.delta_fresh
    (100.0 *. Msched.Compile.delta_reuse_fraction d)
    d.Msched.Compile.delta_seeded d.Msched.Compile.delta_dropped
    d.Msched.Compile.delta_expansions

let read_delta_manifest path =
  match Delta_manifest.of_json_string (read_text path) with
  | Ok m -> m
  | Error msg ->
      Format.eprintf "%s: %a@." path Diag.pp
        (Diag.error Diag.E_CACHE "not a delta manifest: %s" msg);
      exit (Diag.exit_code Diag.E_CACHE)

let compile_delta_cmd ~options ~ppf ~pins ~delta_base ~emit_manifest nl =
  let manifest =
    match delta_base with
    | Some mpath ->
        let base = read_delta_manifest mpath in
        let d = Msched.Compile.compile_delta ~options ~manifest:base nl in
        pp_compiled ppf pins d.Msched.Compile.delta_compiled;
        pp_delta ppf d;
        d.Msched.Compile.delta_manifest
    | None ->
        let b = Msched.Compile.compile_base ~options nl in
        pp_compiled ppf pins b.Msched.Compile.base_compiled;
        Format.fprintf ppf "delta:    base manifest: %d blocks, %d ledger \
                            entries, %d expansions@."
          b.Msched.Compile.base_manifest.Delta_manifest.num_blocks
          (List.length b.Msched.Compile.base_manifest.Delta_manifest.entries)
          b.Msched.Compile.base_expansions;
        b.Msched.Compile.base_manifest
  in
  match emit_manifest with
  | None -> ()
  | Some p -> write_out p (Delta_manifest.to_json_string manifest ^ "\n")

let compile_cmd path pins weight mode forward retries fallback_hard cold
    max_extra compile_jobs trace diag_json delta_base emit_manifest =
  protect @@ fun () ->
  let nl = netlist_of_design_arg path in
  let obs = sink_of_trace trace in
  let ropts = route_options_of mode in
  let ropts =
    match max_extra with
    | None -> ropts
    | Some n -> { ropts with Tiers.max_extra_slots = n }
  in
  (* With --trace - or --diag-json -, that stream owns stdout; move the
     human-readable summary to stderr. *)
  let ppf =
    if trace = Some "-" || diag_json = Some "-" then Format.err_formatter
    else Format.std_formatter
  in
  if forward then begin
    (* The forward scheduler has no retry ladder; it stays on the fail-fast
       path (under [protect], so failures still exit with their class). *)
    let prepared =
      Msched.Compile.prepare
        ~options:(options_of ~obs ~compile_jobs pins weight)
        nl
    in
    let sched = Msched.Compile.route_forward ~obs prepared ropts in
    pp_compiled ppf pins
      { Msched.Compile.prepared; Msched.Compile.schedule = sched };
    write_trace trace obs
  end
  else if delta_base <> None || emit_manifest <> None then begin
    let options =
      {
        (options_of ~obs ~compile_jobs pins weight) with
        Msched.Compile.route = ropts;
      }
    in
    compile_delta_cmd ~options ~ppf ~pins ~delta_base ~emit_manifest nl;
    write_trace trace obs
  end
  else begin
    let options =
      {
        (options_of ~obs ~compile_jobs pins weight) with
        Msched.Compile.route = ropts;
      }
    in
    let r =
      Msched.Compile.compile_resilient ~options ~max_retries:retries
        ~fallback_hard ~reuse:(not cold) nl
    in
    print_diags path r.Msched.Compile.diagnostics;
    (match r.Msched.Compile.compiled with
    | Some c -> pp_compiled ppf pins c
    | None -> ());
    if retries > 0 || fallback_hard || r.Msched.Compile.compiled = None then
      Format.fprintf ppf "%a@." Msched.Compile.pp_resilient r;
    (match diag_json with
    | None -> ()
    | Some p -> write_out p (Msched.Compile.resilient_to_json r ^ "\n"));
    write_trace trace obs;
    let code = Msched.Compile.resilient_exit_code r in
    if code <> 0 then exit code
  end

let lint_cmd path diag_json =
  protect @@ fun () ->
  let text = read_text path in
  let diags =
    match Serial.of_string_diag text with
    | Error diags -> diags
    | Ok nl -> Lint.check nl
  in
  print_diags path diags;
  let rep = report_of diags in
  Format.eprintf "%d error(s), %d warning(s)@."
    (List.length (Diag.Report.errors rep))
    (List.length (Diag.Report.warnings rep));
  (match diag_json with
  | None -> ()
  | Some p -> write_out p (Diag.Report.to_json rep ^ "\n"));
  if Diag.Report.has_errors rep then exit (Diag.Report.exit_code rep)

(* The machine-readable side of [check]: verifier verdict plus the
   schedule-quality numbers a dashboard wants next to it (utilization and
   the replayed critical path). *)
let check_json ~design ~mode ~route prepared sched
    (report : Msched_check.Verify.report) =
  let module J = Diag.Json in
  let sys = prepared.Msched.Compile.system in
  let chain = Msched_explain.Explain.critical_chain ~route prepared sched in
  let b = Buffer.create 1024 in
  let first = ref true in
  Buffer.add_char b '{';
  J.field b ~first "schema" (J.string "msched-check-1");
  J.field b ~first "design" (J.string design);
  J.field b ~first "mode" (J.string mode);
  J.field b ~first "clean"
    (string_of_bool (Msched_check.Verify.is_clean report));
  J.field b ~first "violations"
    (string_of_int (List.length report.Msched_check.Verify.violations));
  let kinds =
    List.sort_uniq compare
      (List.map Msched_check.Verify.kind_name
         report.Msched_check.Verify.violations)
  in
  let kb = Buffer.create 128 in
  let kf = ref true in
  Buffer.add_char kb '{';
  List.iter
    (fun k ->
      J.field kb ~first:kf k
        (string_of_int (Msched_check.Verify.count_kind report k)))
    kinds;
  Buffer.add_char kb '}';
  J.field b ~first "kinds" (Buffer.contents kb);
  let sb = Buffer.create 256 in
  let sf = ref true in
  Buffer.add_char sb '{';
  J.field sb ~first:sf "length" (string_of_int sched.Schedule.length);
  J.field sb ~first:sf "driver" (J.string sched.Schedule.length_driver);
  J.field sb ~first:sf "est_speed_hz"
    (Printf.sprintf "%.6g" (Schedule.est_speed_hz sched));
  J.field sb ~first:sf "channel_utilization"
    (Printf.sprintf "%.6g" (Schedule.channel_utilization sched sys));
  J.field sb ~first:sf "per_channel_utilization"
    ("["
    ^ String.concat ","
        (Array.to_list
           (Array.map (Printf.sprintf "%.6g")
              (Schedule.per_channel_utilization sched sys)))
    ^ "]");
  Buffer.add_char sb '}';
  J.field b ~first "schedule" (Buffer.contents sb);
  let cb = Buffer.create 128 in
  let cf = ref true in
  Buffer.add_char cb '{';
  J.field cb ~first:cf "exact"
    (string_of_bool chain.Msched_explain.Explain.ch_exact);
  J.field cb ~first:cf "driver"
    (J.string chain.Msched_explain.Explain.ch_driver);
  J.field cb ~first:cf "hops"
    (string_of_int (List.length chain.Msched_explain.Explain.ch_hops));
  J.field cb ~first:cf "span_from" "0";
  J.field cb ~first:cf "span_to"
    (string_of_int chain.Msched_explain.Explain.ch_length);
  Buffer.add_char cb '}';
  J.field b ~first "critical_path" (Buffer.contents cb);
  Buffer.add_char b '}';
  Buffer.contents b

let check_cmd path pins weight mode forward trace json =
  protect @@ fun () ->
  let nl = netlist_of_design_arg path in
  let obs = sink_of_trace trace in
  let prepared =
    Msched.Compile.prepare ~options:(options_of ~obs pins weight) nl
  in
  let ropts = route_options_of mode in
  let sched =
    if forward then Msched.Compile.route_forward ~obs prepared ropts
    else Msched.Compile.route ~obs prepared ropts
  in
  let report = Msched.Compile.verify_schedule ~obs prepared sched in
  (* Diagnostics on stderr: stdout stays free for --trace - / JSON piping. *)
  Format.eprintf "%a@.%a@." Schedule.pp_summary sched
    Msched_check.Verify.pp_report report;
  List.iter
    (fun w -> Format.eprintf "scheduler warning: %s@." w)
    sched.Schedule.warnings;
  (match json with
  | None -> ()
  | Some p ->
      write_out p
        (check_json ~design:path ~mode ~route:ropts prepared sched report
        ^ "\n"));
  write_trace trace obs;
  if not (Msched_check.Verify.is_clean report) then exit 2

let explain_cmd name pins weight mode scale json trace =
  protect @@ fun () ->
  let nl = netlist_of_design_arg ~scale name in
  (* Always record spans: the report's phase-attribution table needs them.
     (The library itself stays deterministic — tests analyze with a null
     sink.) *)
  let obs = Sink.create () in
  let prepared =
    Msched.Compile.prepare ~options:(options_of ~obs pins weight) nl
  in
  let ropts = route_options_of mode in
  let sched = Msched.Compile.route ~obs prepared ropts in
  let report =
    Msched_explain.Explain.analyze ~route:ropts ~obs ~design:name prepared
      sched
  in
  let ppf =
    if json = Some "-" || trace = Some "-" then Format.err_formatter
    else Format.std_formatter
  in
  Format.fprintf ppf "%a@." Msched_explain.Explain.pp_summary report;
  (match json with
  | None -> ()
  | Some p -> write_out p (Msched_explain.Explain.to_json report ^ "\n"));
  match trace with
  | None -> ()
  | Some p -> write_out p (Msched_explain.Explain.perfetto_string report)

let stats_cmd path =
  protect @@ fun () ->
  let nl = read_netlist path in
  Format.printf "%a@.%a@." Netlist.pp_summary nl Stats.pp (Stats.compute nl)

let dot_cmd path partition weight =
  protect @@ fun () ->
  let nl = read_netlist path in
  if partition then begin
    let part = Partition.make nl ~max_weight:weight () in
    let cluster c = Some (Ids.Block.to_int (Partition.block_of_cell part c)) in
    Format.printf "%a@." (Dot.output ~cluster) nl
  end
  else Format.printf "%a@." (Dot.output ?cluster:None) nl

let simulate_cmd path horizon seed pins weight trace diag_json =
  (* Simulation-fidelity failures flow through the same structured
     diagnostics as the static pipeline: any exception becomes its diag
     (written to --diag-json before exiting with its class), and an
     imperfect run exits with the verification class carrying
     [Fidelity.diags_of_report]. *)
  let emit diags =
    match diag_json with
    | None -> ()
    | Some p -> write_out p (Diag.Report.to_json (report_of diags) ^ "\n")
  in
  protect @@ fun () ->
  try
    let nl = read_netlist path in
    let obs = sink_of_trace trace in
    let prepared =
      Msched.Compile.prepare ~options:(options_of ~obs pins weight) nl
    in
    let sched = Msched.Compile.route ~obs prepared Tiers.default_options in
    let clocks =
      Async_gen.clocks ~seed (Netlist.domains prepared.Msched.Compile.netlist)
    in
    let report =
      Fidelity.compare_run prepared.Msched.Compile.placement sched ~clocks
        ~horizon_ps:horizon ~seed ~obs ()
    in
    let ppf =
      if trace = Some "-" || diag_json = Some "-" then Format.err_formatter
      else Format.std_formatter
    in
    Format.fprintf ppf "%a@.fidelity: %a@." Schedule.pp_summary sched
      Fidelity.pp_report report;
    let diags = Fidelity.diags_of_report report in
    print_diags path diags;
    emit diags;
    write_trace trace obs;
    if not (Fidelity.perfect report) then
      exit (Diag.Report.exit_code (report_of diags))
  with e ->
    (* [exit] terminates before reaching here, so this catches genuine
       failures only: classify, persist, exit with the class. *)
    let d = Msched.Compile.diag_of_exn e in
    emit [ d ];
    Format.eprintf "%s: %a@." path Diag.pp d;
    exit (Diag.exit_code d.Diag.code)

let profile_cmd name pins weight scale trace json =
  protect @@ fun () ->
  let nl = netlist_of_design_arg ~scale name in
  let obs = Sink.create () in
  let prepared =
    Msched.Compile.prepare ~options:(options_of ~obs pins weight) nl
  in
  let tiers = Msched.Compile.route ~obs prepared Tiers.default_options in
  let forward =
    Msched.Compile.route_forward ~obs prepared Tiers.default_options
  in
  ignore (Msched.Compile.verify_schedule ~obs prepared tiers);
  ignore (Msched.Compile.verify_schedule ~obs prepared forward);
  let ppf =
    if trace = Some "-" || json = Some "-" then Format.err_formatter
    else Format.std_formatter
  in
  Format.fprintf ppf "%a@." Obs_export.pp_summary obs;
  write_trace trace obs;
  match json with
  | None -> ()
  | Some path -> Obs_export.write_file path (Obs_export.json_string obs)

let vcd_cmd path horizon seed =
  protect @@ fun () ->
  let nl = read_netlist path in
  let sim = Msched_sim.Ref_sim.create nl (Msched_sim.Stimulus.make ~seed nl) in
  let clocks = Async_gen.clocks ~seed (Netlist.domains nl) in
  let edges = Msched_clocking.Edges.stream clocks ~horizon_ps:horizon in
  Msched_sim.Vcd.trace_run sim ~edges Format.std_formatter

(* ---- Batch server front end (see docs/SERVER.md). ---- *)

let server_settings pins weight mode retries fallback_hard cold max_extra
    compile_jobs cache_dir obs_jobs =
  let ropts = route_options_of mode in
  let ropts =
    match max_extra with
    | None -> ropts
    | Some n -> { ropts with Tiers.max_extra_slots = n }
  in
  {
    Server.s_options =
      {
        (options_of ~compile_jobs pins weight) with
        Msched.Compile.route = ropts;
      };
    s_max_retries = retries;
    s_fallback_hard = fallback_hard;
    s_reuse = not cold;
    s_cache_dir = cache_dir;
    s_obs_jobs = obs_jobs;
  }

let batch_cmd source jobs cache_dir out pins weight mode retries fallback_hard
    cold max_extra compile_jobs trace json =
  protect @@ fun () ->
  enforce_jobs_budget ~jobs ~compile_jobs;
  let settings =
    server_settings pins weight mode retries fallback_hard cold max_extra
      compile_jobs cache_dir
      (trace <> None || json <> None)
  in
  match Manifest.load source with
  | Error diags ->
      print_diags source diags;
      exit (Diag.Report.exit_code (report_of diags))
  | Ok entries ->
      let job_list =
        List.mapi
          (fun index e ->
            match Server.job_of_file ~index e.Manifest.e_path with
            | Ok job -> job
            | Error d ->
                Format.eprintf "%s: %a@." e.Manifest.e_path Diag.pp d;
                exit (Diag.exit_code d.Diag.code))
          entries
      in
      let batch = Server.run_batch ~jobs settings job_list in
      write_out out (Server.to_ndjson batch);
      (* Human summary on stderr; stdout may be carrying the NDJSON. *)
      Format.eprintf "%s@." (Server.summary_json batch);
      (match (trace, json) with
      | None, None -> ()
      | _ ->
          let obs = Sink.create () in
          Server.record_obs obs batch;
          write_trace trace obs;
          (match json with
          | None -> ()
          | Some path -> Obs_export.write_file path (Obs_export.json_string obs)));
      let code = Server.exit_code batch in
      if code <> 0 then exit code

let serve_cmd use_stdin socket tcp workers queue_max overload deadline grace
    cache_max_bytes inject cache_dir pins weight mode retries fallback_hard
    cold max_extra compile_jobs =
  protect @@ fun () ->
  enforce_jobs_budget ~jobs:workers ~compile_jobs;
  let settings =
    server_settings pins weight mode retries fallback_hard cold max_extra
      compile_jobs cache_dir false
  in
  let address =
    match (socket, tcp) with
    | Some _, Some _ ->
        Printf.eprintf "serve: --socket and --tcp are mutually exclusive\n";
        exit 2
    | Some path, None -> Some (Transport.Unix_path path)
    | None, Some hostport -> (
        match Transport.parse_address ("tcp:" ^ hostport) with
        | Ok a -> Some a
        | Error msg ->
            Printf.eprintf "serve: %s\n" msg;
            exit 2)
    | None, None -> None
  in
  match address with
  | None ->
      if not use_stdin then begin
        Printf.eprintf
          "serve: pass --stdin, --socket PATH, or --tcp HOST:PORT\n";
        exit 1
      end;
      Server.serve settings stdin stdout
  | Some address ->
      let overload =
        match overload with
        | "shed" -> Dispatch.Shed
        | "block" -> Dispatch.Block
        | other ->
            Printf.eprintf "serve: unknown --overload %S (shed|block)\n" other;
            exit 2
      in
      let cfg =
        {
          Transport.default_config with
          Transport.t_address = address;
          t_dispatch =
            {
              Dispatch.d_workers = workers;
              d_queue_max = queue_max;
              d_overload = overload;
              d_deadline_s = deadline;
              d_grace_s = grace;
            };
          t_settings = settings;
          t_inject_faults = inject;
          t_cache_max_bytes = cache_max_bytes;
        }
      in
      let srv = Transport.start cfg in
      (* First SIGTERM/SIGINT drains gracefully; a second one escalates to
         abort (queued requests shed, hung workers abandoned). *)
      let hits = ref 0 in
      let on_signal _ =
        incr hits;
        Transport.request_shutdown srv (if !hits >= 2 then `Abort else `Drain)
      in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
      Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
      Printf.eprintf "msched serve: listening on %s (%d workers, queue %d, %s)\n%!"
        (Transport.address_name (Transport.bound_address srv))
        (max 1 workers) queue_max
        (Dispatch.overload_name overload);
      let s = Transport.wait srv in
      print_endline (Transport.summary_json s);
      if not s.Transport.sm_clean then exit 1

(* ---- Cache hygiene front end (`msched cache stats|gc`). ---- *)

let cache_stats_cmd dir =
  protect @@ fun () ->
  let s = Cache.stats ~dir in
  Printf.printf
    "{\"schema\":\"msched-cache-stats-1\",\"dir\":%s,\"entries\":%d,\"manifests\":%d,\"blocks\":%d,\"bytes\":%d,\"oldest_s\":%.3f}\n"
    (Diag.Json.string dir) s.Cache.st_entries s.Cache.st_manifests
    s.Cache.st_blocks s.Cache.st_bytes s.Cache.st_oldest_s

let cache_gc_cmd dir max_bytes =
  protect @@ fun () ->
  let r = Cache.gc ~dir ~max_bytes in
  Printf.printf
    "{\"schema\":\"msched-cache-gc-1\",\"dir\":%s,\"max_bytes\":%d,\"scanned\":%d,\"evicted\":%d,\"orphans\":%d,\"bytes_before\":%d,\"bytes_after\":%d}\n"
    (Diag.Json.string dir) max_bytes r.Cache.gc_scanned r.Cache.gc_evicted
    r.Cache.gc_orphans r.Cache.gc_bytes_before r.Cache.gc_bytes_after

(* ---- Incremental-compile front end (`msched delta diff`). ---- *)

let delta_diff_cmd base edited pins weight json =
  protect @@ fun () ->
  let options = options_of pins weight in
  let b = Msched.Compile.compile_base ~options (netlist_of_design_arg base) in
  let prepared =
    Msched.Compile.prepare ~options (netlist_of_design_arg edited)
  in
  let ppf =
    if json = Some "-" then Format.err_formatter else Format.std_formatter
  in
  match
    Delta_diff.compute ~manifest:b.Msched.Compile.base_manifest
      prepared.Msched.Compile.placement
      ~analysis:prepared.Msched.Compile.analysis
  with
  | None ->
      Format.fprintf ppf
        "delta diff: block counts differ — topology changed, nothing is \
         comparable (a delta compile would fall back cold)@.";
      (match json with
      | None -> ()
      | Some p ->
          write_out p
            "{\"schema\":\"msched-delta-diff-1\",\"comparable\":false}\n")
  | Some diff ->
      Format.fprintf ppf "%a@." Delta_diff.pp diff;
      (match json with
      | None -> ()
      | Some p -> write_out p (Delta_diff.to_json_string diff ^ "\n"))

let gen_cmd name scale =
  protect @@ fun () ->
  let design =
    match name with
    | "design1" -> Design_gen.design1_like ~scale ()
    | "design2" -> Design_gen.design2_like ~scale ()
    | spec -> design_of_spec spec
  in
  print_string (Serial.to_string design.Design_gen.netlist)

open Cmdliner

let path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"DESIGN" ~doc:"Netlist file")

let design_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DESIGN"
        ~doc:
          (Printf.sprintf "Netlist file, or generator spec: %s"
             Design_gen.spec_help))

let pins_arg = Arg.(value & opt int 240 & info [ "pins" ] ~doc:"Pins per FPGA")
let weight_arg = Arg.(value & opt int 64 & info [ "weight" ] ~doc:"Block capacity")
let mode_arg = Arg.(value & opt string "virtual" & info [ "mode" ] ~doc:"virtual|hard|naive")
let forward_arg = Arg.(value & flag & info [ "forward" ] ~doc:"Forward scheduler")
let horizon_arg = Arg.(value & opt int 300_000 & info [ "horizon" ] ~doc:"Sim horizon (ps)")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Stimulus/clock seed")
let partition_arg = Arg.(value & flag & info [ "partition" ] ~doc:"Cluster by partition block")
let scale_arg = Arg.(value & opt float 0.1 & info [ "scale" ] ~doc:"Generator scale")

let retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Retry budget for the resilient driver: on failure, relax the \
           slack budget, then rip-up & retry with perturbed seeds")

let fallback_hard_arg =
  Arg.(
    value & flag
    & info [ "fallback-hard" ]
        ~doc:
          "If all (re)tries fail, fall back from virtual MTS routing to \
           dedicated hard wires (correct but slower)")

let cold_arg =
  Arg.(
    value & flag
    & info [ "cold" ]
        ~doc:
          "Disable warm rerouting between retry rungs: every attempt \
           re-searches all transports from scratch instead of replaying \
           the previous attempt's routes (same schedules, more work)")

let max_extra_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-extra" ] ~docv:"N"
        ~doc:"Congestion slack budget per transport (overrides the mode default)")

let compile_jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "compile-jobs" ] ~docv:"N"
        ~doc:
          "Worker domains inside one compile (parallel TIERS reverse pass \
           and placement annealer); the schedule is byte-identical for any \
           N, and the product with --jobs/--workers must fit the machine")

let diag_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "diag-json" ] ~docv:"FILE"
        ~doc:"Write the structured diagnostic/driver JSON (\"-\" = stdout)")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a Chrome trace-event JSON of the run (\"-\" = stdout)")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write the observability JSON document (\"-\" = stdout)")

let check_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Write the msched-check-1 verdict JSON (verifier counts, schedule \
           quality, channel utilization, critical path; \"-\" = stdout)")

let name_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"SPEC"
        ~doc:
          (Printf.sprintf "Generator spec: %s" Design_gen.spec_help))

let source_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"MANIFEST|DIR"
        ~doc:
          "Batch source: a directory (every *.mnl underneath, recursively, \
           sorted) or a manifest file (one design path or {\"path\": ...} \
           NDJSON object per line, # comments)")

let jobs_arg =
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains compiling designs concurrently (default: the \
           recommended domain count; output is byte-identical for any N)")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persistent warm-route cache: reroute contexts keyed by design \
           content are stored here and replayed by later runs (corrupt \
           entries degrade to cold with an E_CACHE warning)")

let out_arg =
  Arg.(
    value & opt string "-"
    & info [ "out" ] ~docv:"FILE"
        ~doc:"NDJSON results: one msched-batch-1 record per design plus a \
              msched-batch-summary-1 line (\"-\" = stdout)")

let stdin_flag_arg =
  Arg.(
    value & flag
    & info [ "stdin" ]
        ~doc:
          "Read NDJSON job requests ({\"path\": ..., \"id\"?: ...} or bare \
           paths, one per line) from standard input; respond with one \
           record per line and a summary at EOF")

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Listen on a Unix-domain socket: framed NDJSON requests, one \
           response line per request (protocol in docs/SERVER.md)")

let tcp_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT"
        ~doc:
          "Listen on a TCP socket (empty host = 127.0.0.1; port 0 picks a \
           free port, printed on stderr)")

let workers_arg =
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "workers" ] ~docv:"N"
        ~doc:"Worker domains compiling requests concurrently")

let queue_max_arg =
  Arg.(
    value & opt int 64
    & info [ "queue-max" ] ~docv:"N"
        ~doc:
          "Bound on queued (admitted but not yet running) requests; beyond \
           it the --overload policy applies")

let overload_arg =
  Arg.(
    value & opt string "shed"
    & info [ "overload" ] ~docv:"shed|block"
        ~doc:
          "Full-queue policy: $(b,shed) answers E_OVERLOAD immediately, \
           $(b,block) makes the request wait for space (still subject to \
           its deadline)")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Default per-request deadline: expired requests are answered \
           E_TIMEOUT (cancelled if still queued, abandoned if running); a \
           request's own \"deadline_s\" overrides this")

let grace_arg =
  Arg.(
    value & opt float 1.0
    & info [ "grace" ] ~docv:"SECONDS"
        ~doc:
          "How long an abandoned (timed-out) job may keep its worker before \
           the worker is written off and replaced")

let cache_max_bytes_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "cache-max-bytes" ] ~docv:"BYTES"
        ~doc:
          "Cap the warm-route cache: a janitor evicts least-recently-used \
           entries past the cap while the server runs")

let inject_faults_arg =
  Arg.(
    value & flag
    & info [ "inject-faults" ]
        ~doc:
          "Accept poison:sleep=N | poison:hang | poison:crash requests \
           (chaos testing); without this flag they are refused with \
           E_UNSUPPORTED")

let cache_positional_dir_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"Cache directory (as passed to --cache-dir)")

let gc_max_bytes_arg =
  Arg.(
    required
    & opt (some int) None
    & info [ "max-bytes" ] ~docv:"BYTES"
        ~doc:"Evict least-recently-used entries until the cache fits")

let delta_base_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "delta-base" ] ~docv:"MANIFEST"
        ~doc:
          "Incremental compile: replay the routed schedule recorded in a \
           previous compile's --emit-manifest JSON for everything the edit \
           did not touch (byte-identical schedule, a fraction of the \
           search; see docs/DELTA.md)")

let emit_manifest_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit-manifest" ] ~docv:"FILE"
        ~doc:
          "Write this compile's delta manifest (block fingerprints plus \
           the proven routing ledger; \"-\" = stdout) — the base for a \
           later --delta-base run.  Without --delta-base this makes the \
           compile an exact base compile")

let delta_base_design_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"BASE" ~doc:"Base design: netlist file or generator spec")

let delta_edited_design_arg =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"EDITED"
        ~doc:"Edited design: netlist file or generator spec")

let delta_cmd =
  Cmd.group
    (Cmd.info "delta"
       ~doc:
         "Incremental-compilation tools: inspect what an edit dirties \
          before paying for the compile (docs/DELTA.md)")
    [
      Cmd.v
        (Cmd.info "diff"
           ~doc:
             "Compile BASE as an exact base, re-prepare EDITED, and report \
              the block-level diff — clean/dirty fingerprints, moved \
              blocks, changed boundary nets and the dirty cone a delta \
              compile would re-route (--json = msched-delta-diff-1 line)")
        Term.(
          const delta_diff_cmd $ delta_base_design_arg
          $ delta_edited_design_arg $ pins_arg $ weight_arg $ json_arg);
    ]

let cache_cmd =
  Cmd.group
    (Cmd.info "cache"
       ~doc:
         "Warm-route cache maintenance: inspect or shrink a --cache-dir \
          directory (safe against a live server: eviction runs under the \
          cache lock and never removes in-use entries, which loads keep \
          fresh by touching their mtime)")
    [
      Cmd.v
        (Cmd.info "stats"
           ~doc:"Entry count, total bytes and LRU age as one JSON line")
        Term.(const cache_stats_cmd $ cache_positional_dir_arg);
      Cmd.v
        (Cmd.info "gc"
           ~doc:
             "Evict least-recently-used entries until the directory fits \
              --max-bytes; prints a msched-cache-gc-1 JSON line")
        Term.(const cache_gc_cmd $ cache_positional_dir_arg $ gc_max_bytes_arg);
    ]

let cmds =
  [
    Cmd.v (Cmd.info "compile" ~doc:"Compile a netlist and print the schedule")
      Term.(
        const compile_cmd $ design_arg $ pins_arg $ weight_arg $ mode_arg
        $ forward_arg $ retries_arg $ fallback_hard_arg $ cold_arg
        $ max_extra_arg $ compile_jobs_arg $ trace_arg $ diag_json_arg
        $ delta_base_arg $ emit_manifest_arg);
    Cmd.v
      (Cmd.info "lint"
         ~doc:
           "Parse and lint a netlist, reporting every problem (dangling \
            nets, undriven inputs, combinational cycles, unknown domains)")
      Term.(const lint_cmd $ path_arg $ diag_json_arg);
    Cmd.v
      (Cmd.info "check"
         ~doc:"Compile a netlist and statically verify the schedule")
      Term.(
        const check_cmd $ design_arg $ pins_arg $ weight_arg $ mode_arg
        $ forward_arg $ trace_arg $ check_json_arg);
    Cmd.v
      (Cmd.info "explain"
         ~doc:
           "Compile a design and explain the schedule: the critical chain \
            whose slot span equals the frame length, per-channel occupancy \
            analytics, and an Amdahl-style compile-phase attribution \
            (--json = msched-explain-1 document, --trace = Perfetto \
            occupancy counter tracks)")
      Term.(
        const explain_cmd $ design_arg $ pins_arg $ weight_arg $ mode_arg
        $ scale_arg $ json_arg $ trace_arg);
    Cmd.v (Cmd.info "stats" ~doc:"Netlist statistics")
      Term.(const stats_cmd $ path_arg);
    Cmd.v (Cmd.info "dot" ~doc:"Graphviz DOT export")
      Term.(const dot_cmd $ path_arg $ partition_arg $ weight_arg);
    Cmd.v (Cmd.info "simulate" ~doc:"Compile and co-simulate against the golden model")
      Term.(
        const simulate_cmd $ path_arg $ horizon_arg $ seed_arg $ pins_arg
        $ weight_arg $ trace_arg $ diag_json_arg);
    Cmd.v
      (Cmd.info "profile"
         ~doc:
           "Run the full pipeline (prepare, both schedulers, verifier) with \
            an enabled observability sink and print the span/metric summary")
      Term.(
        const profile_cmd $ design_arg $ pins_arg $ weight_arg
        $ scale_arg $ trace_arg $ json_arg);
    Cmd.v (Cmd.info "vcd" ~doc:"Golden-simulate and dump a VCD waveform to stdout")
      Term.(const vcd_cmd $ path_arg $ horizon_arg $ seed_arg);
    Cmd.v (Cmd.info "gen" ~doc:"Emit a benchmark design in the text format")
      Term.(const gen_cmd $ name_arg $ scale_arg);
    Cmd.v
      (Cmd.info "batch"
         ~doc:
           "Compile a whole corpus concurrently on a Domain worker pool \
            and emit one NDJSON record per design (see docs/SERVER.md)")
      Term.(
        const batch_cmd $ source_arg $ jobs_arg $ cache_dir_arg $ out_arg
        $ pins_arg $ weight_arg $ mode_arg $ retries_arg $ fallback_hard_arg
        $ cold_arg $ max_extra_arg $ compile_jobs_arg $ trace_arg $ json_arg);
    Cmd.v
      (Cmd.info "serve"
         ~doc:
           "Long-lived compile server: NDJSON requests over --stdin, a \
            --socket (Unix-domain) or --tcp listener; concurrent worker \
            domains, bounded queue with --overload backpressure, \
            per-request deadlines, crash recovery, graceful drain on \
            SIGTERM (twice = abort); see docs/SERVER.md")
      Term.(
        const serve_cmd $ stdin_flag_arg $ socket_arg $ tcp_arg $ workers_arg
        $ queue_max_arg $ overload_arg $ deadline_arg $ grace_arg
        $ cache_max_bytes_arg $ inject_faults_arg $ cache_dir_arg $ pins_arg
        $ weight_arg $ mode_arg $ retries_arg $ fallback_hard_arg $ cold_arg
        $ max_extra_arg $ compile_jobs_arg);
    delta_cmd;
    cache_cmd;
  ]

let () =
  let info =
    Cmd.info "msched" ~doc:"Multi-domain static-scheduling emulation compiler"
  in
  exit (Cmd.eval (Cmd.group info cmds))
