(* File-based compiler driver: operate on netlists in the text format of
   Msched_netlist.Serial (extension-agnostic; see lib/netlist/serial.mli).

     msched compile  design.mnl [--pins N] [--weight N] [--mode virtual|hard|naive] [--forward]
     msched check    design.mnl [--pins N] [--weight N] [--mode virtual|hard|naive] [--forward]
     msched stats    design.mnl
     msched dot      design.mnl [--partition] > design.dot
     msched simulate design.mnl [--horizon PS] [--seed N]
     msched gen      design1|design2|fig1|fig3|handshake [--scale F] > design.mnl *)

module Netlist = Msched_netlist.Netlist
module Serial = Msched_netlist.Serial
module Dot = Msched_netlist.Dot
module Stats = Msched_netlist.Stats
module Ids = Msched_netlist.Ids
module Tiers = Msched_route.Tiers
module Schedule = Msched_route.Schedule
module Partition = Msched_partition.Partition
module Async_gen = Msched_clocking.Async_gen
module Fidelity = Msched_sim.Fidelity
module Design_gen = Msched_gen.Design_gen

let read_netlist path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  match Serial.of_string text with
  | Ok nl -> nl
  | Error msg ->
      Printf.eprintf "%s: %s\n" path msg;
      exit 1

let options_of pins weight =
  {
    Msched.Compile.default_options with
    Msched.Compile.pins_per_fpga = pins;
    max_block_weight = weight;
  }

let route_options_of mode =
  match mode with
  | "virtual" -> Tiers.default_options
  | "hard" -> Tiers.hard_options
  | "naive" -> Tiers.naive_options
  | other ->
      Printf.eprintf "unknown mode %s (virtual|hard|naive)\n" other;
      exit 1

let compile_cmd path pins weight mode forward =
  let nl = read_netlist path in
  let prepared = Msched.Compile.prepare ~options:(options_of pins weight) nl in
  let ropts = route_options_of mode in
  let sched =
    if forward then Msched.Compile.route_forward prepared ropts
    else Msched.Compile.route prepared ropts
  in
  Format.printf "design:   %a@." Netlist.pp_summary prepared.Msched.Compile.netlist;
  Format.printf "partition: %a@." Partition.pp_summary prepared.Msched.Compile.partition;
  Format.printf "mts:      %a@." Msched_mts.Classify.pp_summary
    prepared.Msched.Compile.classification;
  Format.printf "%a@." Schedule.pp_summary sched;
  Format.printf "pins used (worst FPGA): %d / %d@."
    (Schedule.max_pins_used sched prepared.Msched.Compile.system)
    pins;
  Format.printf "channel utilization: %.1f%%, mean transport latency: %.1f@."
    (100.0 *. Schedule.channel_utilization sched prepared.Msched.Compile.system)
    (Schedule.mean_transport_latency sched)

let check_cmd path pins weight mode forward =
  let nl = read_netlist path in
  let prepared = Msched.Compile.prepare ~options:(options_of pins weight) nl in
  let ropts = route_options_of mode in
  let sched =
    if forward then Msched.Compile.route_forward prepared ropts
    else Msched.Compile.route prepared ropts
  in
  let report = Msched.Compile.verify_schedule prepared sched in
  Format.printf "%a@.%a@." Schedule.pp_summary sched
    Msched_check.Verify.pp_report report;
  List.iter
    (fun w -> Format.printf "scheduler warning: %s@." w)
    sched.Schedule.warnings;
  if not (Msched_check.Verify.is_clean report) then exit 2

let stats_cmd path =
  let nl = read_netlist path in
  Format.printf "%a@.%a@." Netlist.pp_summary nl Stats.pp (Stats.compute nl)

let dot_cmd path partition weight =
  let nl = read_netlist path in
  if partition then begin
    let part = Partition.make nl ~max_weight:weight () in
    let cluster c = Some (Ids.Block.to_int (Partition.block_of_cell part c)) in
    Format.printf "%a@." (Dot.output ~cluster) nl
  end
  else Format.printf "%a@." (Dot.output ?cluster:None) nl

let simulate_cmd path horizon seed pins weight =
  let nl = read_netlist path in
  let prepared = Msched.Compile.prepare ~options:(options_of pins weight) nl in
  let sched = Msched.Compile.route prepared Tiers.default_options in
  let clocks =
    Async_gen.clocks ~seed (Netlist.domains prepared.Msched.Compile.netlist)
  in
  let report =
    Fidelity.compare_run prepared.Msched.Compile.placement sched ~clocks
      ~horizon_ps:horizon ~seed ()
  in
  Format.printf "%a@.fidelity: %a@." Schedule.pp_summary sched
    Fidelity.pp_report report;
  if not (Fidelity.perfect report) then exit 2

let vcd_cmd path horizon seed =
  let nl = read_netlist path in
  let sim = Msched_sim.Ref_sim.create nl (Msched_sim.Stimulus.make ~seed nl) in
  let clocks = Async_gen.clocks ~seed (Netlist.domains nl) in
  let edges = Msched_clocking.Edges.stream clocks ~horizon_ps:horizon in
  Msched_sim.Vcd.trace_run sim ~edges Format.std_formatter

let gen_cmd name scale =
  let design =
    match name with
    | "design1" -> Design_gen.design1_like ~scale ()
    | "design2" -> Design_gen.design2_like ~scale ()
    | "fig1" -> Design_gen.fig1 ()
    | "fig3" -> Design_gen.fig3_latch ()
    | "handshake" -> Design_gen.handshake ()
    | other ->
        Printf.eprintf "unknown design %s\n" other;
        exit 1
  in
  print_string (Serial.to_string design.Design_gen.netlist)

open Cmdliner

let path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"DESIGN" ~doc:"Netlist file")

let pins_arg = Arg.(value & opt int 240 & info [ "pins" ] ~doc:"Pins per FPGA")
let weight_arg = Arg.(value & opt int 64 & info [ "weight" ] ~doc:"Block capacity")
let mode_arg = Arg.(value & opt string "virtual" & info [ "mode" ] ~doc:"virtual|hard|naive")
let forward_arg = Arg.(value & flag & info [ "forward" ] ~doc:"Forward scheduler")
let horizon_arg = Arg.(value & opt int 300_000 & info [ "horizon" ] ~doc:"Sim horizon (ps)")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Stimulus/clock seed")
let partition_arg = Arg.(value & flag & info [ "partition" ] ~doc:"Cluster by partition block")
let scale_arg = Arg.(value & opt float 0.1 & info [ "scale" ] ~doc:"Generator scale")

let name_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"NAME" ~doc:"design1|design2|fig1|fig3|handshake")

let cmds =
  [
    Cmd.v (Cmd.info "compile" ~doc:"Compile a netlist and print the schedule")
      Term.(const compile_cmd $ path_arg $ pins_arg $ weight_arg $ mode_arg $ forward_arg);
    Cmd.v
      (Cmd.info "check"
         ~doc:"Compile a netlist and statically verify the schedule")
      Term.(const check_cmd $ path_arg $ pins_arg $ weight_arg $ mode_arg $ forward_arg);
    Cmd.v (Cmd.info "stats" ~doc:"Netlist statistics")
      Term.(const stats_cmd $ path_arg);
    Cmd.v (Cmd.info "dot" ~doc:"Graphviz DOT export")
      Term.(const dot_cmd $ path_arg $ partition_arg $ weight_arg);
    Cmd.v (Cmd.info "simulate" ~doc:"Compile and co-simulate against the golden model")
      Term.(const simulate_cmd $ path_arg $ horizon_arg $ seed_arg $ pins_arg $ weight_arg);
    Cmd.v (Cmd.info "vcd" ~doc:"Golden-simulate and dump a VCD waveform to stdout")
      Term.(const vcd_cmd $ path_arg $ horizon_arg $ seed_arg);
    Cmd.v (Cmd.info "gen" ~doc:"Emit a benchmark design in the text format")
      Term.(const gen_cmd $ name_arg $ scale_arg);
  ]

let () =
  let info =
    Cmd.info "msched" ~doc:"Multi-domain static-scheduling emulation compiler"
  in
  exit (Cmd.eval (Cmd.group info cmds))
