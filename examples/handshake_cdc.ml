(* Clock-domain-crossing handshake: a sender domain passes 4-bit payloads to
   an asynchronous receiver through a req/ack handshake with two-flop
   synchronizers.  The example compiles the design in all three routing
   modes and co-simulates each against the reference simulator — the classic
   "did my CDC survive emulation?" check. *)

module Netlist = Msched_netlist.Netlist
module Tiers = Msched_route.Tiers
module Schedule = Msched_route.Schedule
module Async_gen = Msched_clocking.Async_gen
module Fidelity = Msched_sim.Fidelity

let () =
  let design = Msched_gen.Design_gen.handshake () in
  Format.printf "Design: %a@." Netlist.pp_summary design.Msched_gen.Design_gen.netlist;
  let options =
    { Msched.Compile.default_options with Msched.Compile.max_block_weight = 6 }
  in
  let prepared = Msched.Compile.prepare ~options design.Msched_gen.Design_gen.netlist in
  let clocks =
    Async_gen.clocks ~seed:9 (Netlist.domains prepared.Msched.Compile.netlist)
  in
  let failures = ref 0 in
  let run label opts =
    let sched = Msched.Compile.route prepared opts in
    let report =
      Fidelity.compare_run prepared.Msched.Compile.placement sched ~clocks
        ~horizon_ps:1_000_000 ()
    in
    Format.printf "%-8s %a@.         fidelity: %a@." label Schedule.pp_summary
      sched Fidelity.pp_report report;
    if not (Fidelity.perfect report) then incr failures
  in
  run "virtual" Tiers.default_options;
  run "hard" Tiers.hard_options;
  (* A correct two-flop CDC contains no MTS latches, so even naive routing
     preserves it — the synchronizers absorb transport skew by design. *)
  run "naive" Tiers.naive_options;
  if !failures = 0 then
    print_endline "handshake_cdc: all routing modes preserve the handshake."
  else begin
    Printf.printf "handshake_cdc: %d mode(s) failed (unexpected)\n" !failures;
    exit 1
  end
