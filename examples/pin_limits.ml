(* The Figure 8 effect in miniature: sweep the partition size of a
   multi-domain design and watch per-FPGA pin demand under hard vs virtual
   MTS routing.  Under a fixed user-IO pin budget, hard routing forces more
   (smaller) FPGAs than virtual routing. *)

module Pin_sweep = Msched.Pin_sweep

let () =
  let design =
    Msched_gen.Design_gen.random_multidomain ~domains:3 ~modules:60
      ~mts_fraction:0.25 ()
  in
  let points =
    Pin_sweep.sweep ~weights:[ 128; 96; 64; 48; 32; 24; 16 ]
      design.Msched_gen.Design_gen.netlist
  in
  Format.printf "%a@." Pin_sweep.pp_points points;
  List.iter
    (fun limit ->
      let show hard =
        match Pin_sweep.min_fpgas_under_pin_limit points ~pin_limit:limit ~hard with
        | Some n -> string_of_int n
        | None -> "-"
      in
      Format.printf "pin limit %3d: min FPGAs hard=%s virtual=%s@." limit
        (show true) (show false))
    [ 64; 48; 32; 24; 16 ]
