(* A flip-flop clocked by a derived clock that mixes two asynchronous
   domains — the paper's "MTS flip-flop".  The compiler rewrites it into a
   master/slave latch pair (Section 5) and schedules the pair with the latch
   machinery; we verify the compiled system against the golden simulator and
   show the serialized netlist before/after the transform. *)

module B = Msched_netlist.Netlist.Builder
module Cell = Msched_netlist.Cell
module Netlist = Msched_netlist.Netlist
module Serial = Msched_netlist.Serial
module Async_gen = Msched_clocking.Async_gen
module Fidelity = Msched_sim.Fidelity

let () =
  let b = B.create ~design_name:"gated_clock" () in
  let d0 = B.add_domain b "clk_a" in
  let d1 = B.add_domain b "clk_b" in
  let i0 = B.add_input b ~name:"ia" ~domain:d0 () in
  let i1 = B.add_input b ~name:"ib" ~domain:d1 () in
  let qa = B.add_flip_flop b ~name:"qa" ~data:i0 ~clock:(Cell.Dom_clock d0) () in
  let qb = B.add_flip_flop b ~name:"qb" ~data:i1 ~clock:(Cell.Dom_clock d1) () in
  (* Derived clock mixing both domains — one signal per domain, so a single
     edge never races the gate cone. *)
  let dclk = B.add_gate b ~name:"derived_clk" Cell.Or [ qa; qb ] in
  let payload = B.add_flip_flop b ~name:"payload" ~data:i0 ~clock:(Cell.Dom_clock d0) () in
  let mts_ff =
    B.add_flip_flop b ~name:"mts_ff" ~data:payload ~clock:(Cell.Net_trigger dclk) ()
  in
  let sink = B.add_flip_flop b ~name:"sink" ~data:mts_ff ~clock:(Cell.Dom_clock d1) () in
  let (_ : Msched_netlist.Ids.Cell.t) = B.add_output b ~name:"out" sink in
  let design = B.finalize b in

  print_endline "--- source netlist (serialized) ---";
  print_string (Serial.to_string design);

  let options =
    { Msched.Compile.default_options with Msched.Compile.max_block_weight = 4 }
  in
  let prepared = Msched.Compile.prepare ~options design in
  Printf.printf "\nMTS flip-flop rewrites: %d\n"
    (List.length prepared.Msched.Compile.rewrites);
  List.iter
    (fun (rw : Msched_mts.Transform.rewrite) ->
      let nl = prepared.Msched.Compile.netlist in
      Format.printf "  %a -> master %s + slave %s@."
        Msched_netlist.Ids.Cell.pp rw.Msched_mts.Transform.old_ff
        (Netlist.cell nl rw.Msched_mts.Transform.master).Cell.name
        (Netlist.cell nl rw.Msched_mts.Transform.slave).Cell.name)
    prepared.Msched.Compile.rewrites;

  let sched = Msched.Compile.route prepared Msched_route.Tiers.default_options in
  Format.printf "schedule: %a@." Msched_route.Schedule.pp_summary sched;
  let clocks =
    Async_gen.clocks ~seed:13 (Netlist.domains prepared.Msched.Compile.netlist)
  in
  let report =
    Fidelity.compare_run prepared.Msched.Compile.placement sched ~clocks
      ~horizon_ps:600_000 ()
  in
  Format.printf "fidelity: %a@." Fidelity.pp_report report;
  if Fidelity.perfect report then
    print_endline "gated_clock: master/slave transform emulates faithfully."
  else begin
    print_endline "gated_clock: MISMATCH (unexpected)";
    exit 1
  end
