(* A memory-transaction-dominated dual-domain design (the paper's Design2
   flavor): RAMs written in one domain and read in another, so the read data
   nets are multi-transition.  Compiles with both hard-wired and virtually
   routed MTS transport and reports the critical-path/emulation-speed
   impact, then validates fidelity of the virtual schedule. *)

module Netlist = Msched_netlist.Netlist
module Tiers = Msched_route.Tiers
module Schedule = Msched_route.Schedule
module Classify = Msched_mts.Classify
module Async_gen = Msched_clocking.Async_gen
module Fidelity = Msched_sim.Fidelity

let () =
  let design = Msched_gen.Design_gen.design2_like ~scale:0.04 () in
  Format.printf "Design: %a@." Netlist.pp_summary design.Msched_gen.Design_gen.netlist;
  let prepared = Msched.Compile.prepare design.Msched_gen.Design_gen.netlist in
  Format.printf "MTS: %a@." Classify.pp_summary prepared.Msched.Compile.classification;
  let hard = Msched.Compile.route prepared Tiers.hard_options in
  let virt = Msched.Compile.route prepared Tiers.default_options in
  Format.printf "hard-routed MTS:    %a@." Schedule.pp_summary hard;
  Format.printf "virtual-routed MTS: %a@." Schedule.pp_summary virt;
  Format.printf "pin pressure: hard=%d virtual=%d (per-FPGA worst case)@."
    (Schedule.max_pins_used hard prepared.Msched.Compile.system)
    (Schedule.max_pins_used virt prepared.Msched.Compile.system);
  let clocks =
    Async_gen.clocks ~seed:21 (Netlist.domains prepared.Msched.Compile.netlist)
  in
  let report =
    Fidelity.compare_run prepared.Msched.Compile.placement virt ~clocks
      ~horizon_ps:250_000 ()
  in
  Format.printf "virtual fidelity: %a@." Fidelity.pp_report report;
  if Fidelity.perfect report then
    print_endline "memory_system: RAM traffic emulates faithfully."
  else begin
    print_endline "memory_system: MISMATCH (unexpected)";
    exit 1
  end
