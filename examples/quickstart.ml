(* Quickstart: build a two-domain circuit with an MTS net (the paper's
   Figure 1), compile it for a small FPGA array, print the schedule, and
   verify the compiled system against the golden simulator. *)

module Netlist = Msched_netlist.Netlist
module Cell = Msched_netlist.Cell
module Schedule = Msched_route.Schedule
module Async_gen = Msched_clocking.Async_gen
module Fidelity = Msched_sim.Fidelity

let () =
  (* 1. Describe the design: two flip-flops in asynchronous domains feed a
     gate whose output (an MTS net) is sampled back in both domains. *)
  let b = Netlist.Builder.create ~design_name:"quickstart" () in
  let d1 = Netlist.Builder.add_domain b "clk1" in
  let d2 = Netlist.Builder.add_domain b "clk2" in
  let in1 = Netlist.Builder.add_input b ~name:"in1" ~domain:d1 () in
  let in2 = Netlist.Builder.add_input b ~name:"in2" ~domain:d2 () in
  let ff1 =
    Netlist.Builder.add_flip_flop b ~name:"ff1" ~data:in1
      ~clock:(Cell.Dom_clock d1) ()
  in
  let ff2 =
    Netlist.Builder.add_flip_flop b ~name:"ff2" ~data:in2
      ~clock:(Cell.Dom_clock d2) ()
  in
  let q = Netlist.Builder.add_gate b ~name:"q" Cell.And [ ff1; ff2 ] in
  let s1 =
    Netlist.Builder.add_flip_flop b ~name:"s1" ~data:q
      ~clock:(Cell.Dom_clock d1) ()
  in
  let s2 =
    Netlist.Builder.add_flip_flop b ~name:"s2" ~data:q
      ~clock:(Cell.Dom_clock d2) ()
  in
  let (_ : Msched_netlist.Ids.Cell.t) = Netlist.Builder.add_output b ~name:"o1" s1 in
  let (_ : Msched_netlist.Ids.Cell.t) = Netlist.Builder.add_output b ~name:"o2" s2 in
  let design = Netlist.Builder.finalize b in
  Format.printf "Design: %a@." Netlist.pp_summary design;

  (* 2. Compile: partition, place, analyze MTS structure, schedule. *)
  let options =
    { Msched.Compile.default_options with Msched.Compile.max_block_weight = 3 }
  in
  let compiled = Msched.Compile.compile ~options design in
  let prepared = compiled.Msched.Compile.prepared in
  Format.printf "MTS classification: %a@."
    Msched_mts.Classify.pp_summary prepared.Msched.Compile.classification;
  Format.printf "Schedule: %a@." Schedule.pp_summary compiled.Msched.Compile.schedule;

  (* 3. Run the compiled system against the reference simulator on an
     asynchronous edge stream. *)
  let clocks = Async_gen.clocks ~seed:3 (Netlist.domains prepared.Msched.Compile.netlist) in
  let report =
    Fidelity.compare_run prepared.Msched.Compile.placement
      compiled.Msched.Compile.schedule ~clocks ~horizon_ps:500_000 ()
  in
  Format.printf "Fidelity: %a@." Fidelity.pp_report report;
  if Fidelity.perfect report then
    print_endline "quickstart: emulation matches the reference exactly."
  else begin
    print_endline "quickstart: MISMATCH (unexpected)";
    exit 1
  end
